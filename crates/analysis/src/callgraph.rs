//! Approximate workspace call graph over [`crate::items`] output.
//!
//! ## Resolution rules (documented over-approximation)
//!
//! Call sites are resolved by name, never by type inference:
//!
//! - `self.m(…)` — methods named `m` on the caller's own impl type;
//!   if the type defines none (trait-object or inherited call), falls
//!   back to *every* method named `m` in the workspace.
//! - `Type::m(…)` / `Self::m(…)` (uppercase qualifier) — methods of
//!   that impl type only. Unknown types (std: `Vec::new`) resolve to
//!   nothing and contribute no edge.
//! - `module::f(…)` (lowercase path) — free functions named `f` whose
//!   module path ends with the written qualifier segments.
//! - `recv.m(…)` — every method named `m` anywhere in the workspace.
//!   This is the main source of false edges; the boundary stop-list in
//!   this module is sized for it (e.g. `.take(…)` on an iterator
//!   would otherwise reach `Slot::take` in `plan.rs`).
//! - `f(…)` (bare lowercase) — every free function named `f`.
//!   Uppercase bare calls are tuple-struct constructors: no edge.
//! - `name!(…)` — macros never create edges; panicking macros are
//!   leaf facts instead.
//!
//! The contract is one-sided: the graph may contain edges the compiler
//! would not (callers pay with an occasional boundary entry), but a
//! call between two workspace functions is never silently missing.
//!
//! ## Boundary (stop-list)
//!
//! Reachability never *enters* these modules — they are present in the
//! exported graph but their facts are not reported and their callees
//! are not traversed:
//!
//! - `crates/obs/**` — telemetry; locks and wall-clock reads are its
//!   job, and `no-wallclock-outside-obs` already polices the border.
//! - `crates/bench/**`, `crates/analysis/**` — harness/tooling, never
//!   linked into serving.
//! - `engine.rs`, `shadow.rs` — offline build front-end and the
//!   off-hot-path shadow sampler (its locks are the sanctioned
//!   sampling window).
//! - `plan.rs` — the prepare-time stage executor; serving only shares
//!   method *names* with it (`take`, `run`), not calls.

use crate::engine::Workspace;
use crate::items::{extract_items, FnItem};
use crate::reach::{extract_facts, Fact};
use crate::scanner::{is_keyword, SourceFile, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Module trees reachability must not enter (path prefixes).
pub const BOUNDARY_PREFIXES: &[&str] = &["crates/obs/", "crates/bench/", "crates/analysis/"];

/// Single files reachability must not enter.
pub const BOUNDARY_FILES: &[&str] = &[
    "crates/core/src/search/engine.rs",
    "crates/core/src/search/shadow.rs",
    "crates/core/src/plan.rs",
];

/// True when `path` is on the stop-list.
pub fn is_boundary_path(path: &str) -> bool {
    BOUNDARY_PREFIXES.iter().any(|p| path.starts_with(p)) || BOUNDARY_FILES.contains(&path)
}

/// One function in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Stable display id, e.g. `core::search::serve::Searcher::query`.
    pub id: String,
    /// Function name.
    pub name: String,
    /// Impl/trait self type, if a method.
    pub impl_type: Option<String>,
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Module path: crate segment + file modules + inline modules.
    pub module_path: Vec<String>,
    /// On the reachability stop-list.
    pub is_boundary: bool,
    /// Leaf capability facts found in this function's own body.
    pub facts: Vec<Fact>,
}

/// A call site recognized in a function body.
#[derive(Debug, Clone)]
enum Call {
    /// `self.m(…)`
    SelfMethod { name: String, line: u32 },
    /// `recv.m(…)`
    Method { name: String, line: u32 },
    /// `f(…)`
    Free { name: String, line: u32 },
    /// `a::b::f(…)` — qualifier segments, `crate`/`self`/`super`
    /// already stripped.
    Path {
        qualifier: Vec<String>,
        name: String,
        line: u32,
    },
}

/// The workspace call graph.
pub struct CallGraph {
    /// Nodes sorted by (path, line).
    pub nodes: Vec<Node>,
    /// Sorted adjacency: `edges[n]` = callee indices.
    pub edges: Vec<Vec<usize>>,
    /// First call site per edge: (caller path, line).
    pub edge_sites: BTreeMap<(usize, usize), u32>,
}

impl CallGraph {
    /// Build the graph for every non-test file / function.
    pub fn build(ws: &Workspace) -> CallGraph {
        // 1. Extract items per file.
        let mut per_file: Vec<(&SourceFile, Vec<FnItem>)> = Vec::new();
        for f in &ws.files {
            if f.is_test_path() {
                continue;
            }
            per_file.push((f, extract_items(f)));
        }

        // 2. Materialize nodes (test fns dropped).
        let mut nodes: Vec<Node> = Vec::new();
        let mut bodies: Vec<Option<(usize, usize)>> = Vec::new();
        let mut file_of: Vec<usize> = Vec::new();
        for (fi, (f, items)) in per_file.iter().enumerate() {
            for it in items {
                if it.is_test {
                    continue;
                }
                let mut module_path = derive_file_modules(&f.path);
                module_path.extend(it.inline_mods.iter().cloned());
                nodes.push(Node {
                    id: String::new(),
                    name: it.name.clone(),
                    impl_type: it.impl_type.clone(),
                    path: f.path.clone(),
                    line: it.line,
                    module_path,
                    is_boundary: is_boundary_path(&f.path),
                    facts: Vec::new(),
                });
                bodies.push(it.body);
                file_of.push(fi);
            }
        }

        // 3. Stable ids, deduplicated with @line.
        let mut base_ids: Vec<String> = nodes
            .iter()
            .map(|n| {
                let mut id = n.module_path.join("::");
                if let Some(t) = &n.impl_type {
                    id.push_str("::");
                    id.push_str(t);
                }
                id.push_str("::");
                id.push_str(&n.name);
                id
            })
            .collect();
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for id in &base_ids {
            *counts.entry(id.as_str()).or_default() += 1;
        }
        let dups: BTreeSet<String> = counts
            .iter()
            .filter(|(_, c)| **c > 1)
            .map(|(id, _)| id.to_string())
            .collect();
        for (k, id) in base_ids.iter_mut().enumerate() {
            if dups.contains(id.as_str()) {
                id.push_str(&format!("@{}", nodes[k].line));
            }
        }
        for (k, id) in base_ids.into_iter().enumerate() {
            nodes[k].id = id;
        }

        // 4. Scan bodies: call sites + leaf facts. A nested fn's body
        // range is excluded from its parent's scan.
        let mut calls: Vec<Vec<Call>> = vec![Vec::new(); nodes.len()];
        let mut facts: Vec<Vec<Fact>> = vec![Vec::new(); nodes.len()];
        for k in 0..nodes.len() {
            let Some((bs, be)) = bodies[k] else { continue };
            let file = per_file[file_of[k]].0;
            let nested: Vec<(usize, usize)> = (0..nodes.len())
                .filter(|&o| o != k && file_of[o] == file_of[k])
                .filter_map(|o| bodies[o])
                .filter(|&(os, oe)| bs < os && oe <= be)
                .collect();
            let (c, f) = scan_body(&file.tokens, bs, be, &nested);
            calls[k] = c;
            facts[k] = f;
        }
        for (k, f) in facts.into_iter().enumerate() {
            nodes[k].facts = f;
        }

        // 5. Name indexes.
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (k, n) in nodes.iter().enumerate() {
            match &n.impl_type {
                Some(t) => {
                    methods_by_name.entry(n.name.as_str()).or_default().push(k);
                    by_impl
                        .entry((t.as_str(), n.name.as_str()))
                        .or_default()
                        .push(k);
                }
                None => free_by_name.entry(n.name.as_str()).or_default().push(k),
            }
        }

        // 6. Resolve calls to edges.
        let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut edge_sites: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        let empty: Vec<usize> = Vec::new();
        for (k, cs) in calls.iter().enumerate() {
            for c in cs {
                let (targets, line): (&[usize], u32) = match c {
                    Call::SelfMethod { name, line } => {
                        let own = nodes[k]
                            .impl_type
                            .as_deref()
                            .and_then(|t| by_impl.get(&(t, name.as_str())));
                        match own {
                            Some(v) => (v.as_slice(), *line),
                            None => (
                                methods_by_name
                                    .get(name.as_str())
                                    .map(Vec::as_slice)
                                    .unwrap_or(&empty),
                                *line,
                            ),
                        }
                    }
                    Call::Method { name, line } => (
                        methods_by_name
                            .get(name.as_str())
                            .map(Vec::as_slice)
                            .unwrap_or(&empty),
                        *line,
                    ),
                    Call::Free { name, line } => (
                        free_by_name
                            .get(name.as_str())
                            .map(Vec::as_slice)
                            .unwrap_or(&empty),
                        *line,
                    ),
                    Call::Path {
                        qualifier,
                        name,
                        line,
                    } => {
                        let last = qualifier.last().map(String::as_str).unwrap_or("");
                        if last == "Self" {
                            let own = nodes[k]
                                .impl_type
                                .as_deref()
                                .and_then(|t| by_impl.get(&(t, name.as_str())));
                            (own.map(Vec::as_slice).unwrap_or(&empty), *line)
                        } else if last.starts_with(char::is_uppercase) {
                            (
                                by_impl
                                    .get(&(last, name.as_str()))
                                    .map(Vec::as_slice)
                                    .unwrap_or(&empty),
                                *line,
                            )
                        } else {
                            // Module path: free fns whose module path
                            // ends with the qualifier. Resolved per
                            // call, so borrow the name bucket.
                            let bucket = free_by_name.get(name.as_str()).unwrap_or(&empty);
                            let matched: Vec<usize> = bucket
                                .iter()
                                .copied()
                                .filter(|&t| {
                                    module_suffix_matches(&nodes[t].module_path, qualifier)
                                })
                                .collect();
                            for &t in &matched {
                                edge_set.insert((k, t));
                                edge_sites.entry((k, t)).or_insert(*line);
                            }
                            continue;
                        }
                    }
                };
                for &t in targets {
                    edge_set.insert((k, t));
                    edge_sites.entry((k, t)).or_insert(line);
                }
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (a, b) in edge_set {
            edges[a].push(b);
        }
        CallGraph {
            nodes,
            edges,
            edge_sites,
        }
    }

    /// Node index by (exact path, fn name); first match in node order.
    pub fn find(&self, path: &str, name: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.path == path && n.name == name)
    }

    /// Deterministic JSON export.
    pub fn to_json(&self) -> String {
        use crate::report::json_str;
        let mut s = String::from("{\n  \"nodes\": [\n");
        for (k, n) in self.nodes.iter().enumerate() {
            let caps: BTreeSet<&str> = n.facts.iter().map(|f| f.cap.label()).collect();
            let caps: Vec<String> = caps.into_iter().map(json_str).collect();
            s.push_str(&format!(
                "    {{\"id\": {}, \"path\": {}, \"line\": {}, \"boundary\": {}, \"facts\": [{}]}}{}\n",
                json_str(&n.id),
                json_str(&n.path),
                n.line,
                n.is_boundary,
                caps.join(", "),
                if k + 1 < self.nodes.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"edges\": [\n");
        let total: usize = self.edges.iter().map(Vec::len).sum();
        let mut seen = 0usize;
        for (a, outs) in self.edges.iter().enumerate() {
            for &b in outs {
                seen += 1;
                let line = self.edge_sites.get(&(a, b)).copied().unwrap_or(0);
                s.push_str(&format!(
                    "    {{\"from\": {}, \"to\": {}, \"line\": {}}}{}\n",
                    json_str(&self.nodes[a].id),
                    json_str(&self.nodes[b].id),
                    line,
                    if seen < total { "," } else { "" },
                ));
            }
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Deterministic Graphviz DOT export; boundary nodes are dashed.
    pub fn to_dot(&self) -> String {
        let mut s =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for n in &self.nodes {
            let style = if n.is_boundary {
                ", style=dashed"
            } else if !n.facts.is_empty() {
                ", style=bold"
            } else {
                ""
            };
            let caps: BTreeSet<&str> = n.facts.iter().map(|f| f.cap.label()).collect();
            let label = if caps.is_empty() {
                n.id.clone()
            } else {
                format!(
                    "{}\\n[{}]",
                    n.id,
                    caps.into_iter().collect::<Vec<_>>().join(", ")
                )
            };
            s.push_str(&format!(
                "  \"{}\" [label=\"{}\"{}];\n",
                n.id.replace('"', "\\\""),
                label.replace('"', "\\\""),
                style
            ));
        }
        for (a, outs) in self.edges.iter().enumerate() {
            for &b in outs {
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.nodes[a].id.replace('"', "\\\""),
                    self.nodes[b].id.replace('"', "\\\"")
                ));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// `true` when `module_path` ends with `qualifier`
/// (`[core, search, select]` matches `select` and `search::select`).
fn module_suffix_matches(module_path: &[String], qualifier: &[String]) -> bool {
    if qualifier.is_empty() || qualifier.len() > module_path.len() {
        return false;
    }
    module_path[module_path.len() - qualifier.len()..]
        .iter()
        .zip(qualifier)
        .all(|(a, b)| a == b)
}

/// Crate segment + file modules from a workspace-relative path:
/// `crates/core/src/search/serve.rs` → `[core, search, serve]`,
/// `src/main.rs` → `[litsearch, main]`, `lib.rs`/`mod.rs` drop their
/// final segment.
fn derive_file_modules(path: &str) -> Vec<String> {
    let mut segs: Vec<&str> = path.split('/').collect();
    let file = segs.pop().unwrap_or("");
    let mut out: Vec<String> = Vec::new();
    let mut rest: &[&str] = &segs;
    if segs.first() == Some(&"crates") && segs.len() >= 2 {
        out.push(segs[1].to_string());
        rest = &segs[2..];
    } else {
        out.push("litsearch".to_string());
    }
    let mut iter = rest.iter().peekable();
    if iter.peek() == Some(&&"src") {
        iter.next();
    }
    for s in iter {
        if *s != "bin" {
            out.push((*s).to_string());
        }
    }
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if stem != "lib" && stem != "mod" {
        out.push(stem.to_string());
    }
    out
}

fn text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}

/// Scan one body range for call sites and leaf facts, skipping nested
/// fn body ranges and `#[cfg(test)]` tokens.
fn scan_body(
    toks: &[Tok],
    bs: usize,
    be: usize,
    nested: &[(usize, usize)],
) -> (Vec<Call>, Vec<Fact>) {
    let mut calls = Vec::new();
    let mut i = bs;
    while i <= be.min(toks.len().saturating_sub(1)) {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.in_test || is_keyword(&t.text) {
            i += 1;
            continue;
        }
        if text(toks, i + 1) != "(" {
            i += 1;
            continue;
        }
        let prev = if i == 0 { "" } else { text(toks, i - 1) };
        match prev {
            "fn" => {}
            "." => {
                let on_self = text(toks, i - 2) == "self" && (i < 3 || text(toks, i - 3) != ".");
                if on_self {
                    calls.push(Call::SelfMethod {
                        name: t.text.clone(),
                        line: t.line,
                    });
                } else {
                    calls.push(Call::Method {
                        name: t.text.clone(),
                        line: t.line,
                    });
                }
            }
            "::" => {
                let mut qualifier: Vec<String> = Vec::new();
                let mut j = i - 1; // at "::"
                while j >= 1 && toks[j].text == "::" && toks[j - 1].kind == TokKind::Ident {
                    qualifier.push(toks[j - 1].text.clone());
                    if j < 2 || toks[j - 2].text != "::" {
                        break;
                    }
                    j -= 2;
                }
                qualifier.reverse();
                qualifier.retain(|q| !matches!(q.as_str(), "crate" | "self" | "super"));
                if !qualifier.is_empty() {
                    calls.push(Call::Path {
                        qualifier,
                        name: t.text.clone(),
                        line: t.line,
                    });
                }
            }
            _ => {
                if t.text.starts_with(|c: char| c.is_lowercase() || c == '_') {
                    calls.push(Call::Free {
                        name: t.text.clone(),
                        line: t.line,
                    });
                }
            }
        }
        i += 1;
    }
    let facts = extract_facts(toks, bs, be, nested);
    (calls, facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Workspace;

    const BASELINES: &[(&str, &str)] = &[
        ("results/metrics_baseline.json", r#"{"spans": []}"#),
        ("results/metrics_prepare_baseline.json", r#"{"spans": []}"#),
        ("results/metrics_warm_baseline.json", r#"{"spans": []}"#),
        ("results/quality_baseline.json", r#"{"series": []}"#),
    ];

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(&Workspace::from_memory(files, BASELINES))
    }

    #[test]
    fn module_derivation() {
        assert_eq!(
            derive_file_modules("crates/core/src/search/serve.rs"),
            ["core", "search", "serve"]
        );
        assert_eq!(
            derive_file_modules("crates/textproc/src/lib.rs"),
            ["textproc"]
        );
        assert_eq!(
            derive_file_modules("crates/core/src/search/mod.rs"),
            ["core", "search"]
        );
        assert_eq!(derive_file_modules("src/main.rs"), ["litsearch", "main"]);
    }

    #[test]
    fn self_method_resolves_within_impl_first() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub struct A;\nimpl A {\n    pub fn top(&self) { self.helper(); }\n    fn helper(&self) {}\n}\n",
            ),
            (
                "crates/core/src/b.rs",
                "pub struct B;\nimpl B {\n    pub fn helper(&self) {}\n}\n",
            ),
        ]);
        let top = g.find("crates/core/src/a.rs", "top").unwrap();
        let own = g.find("crates/core/src/a.rs", "helper").unwrap();
        let other = g.find("crates/core/src/b.rs", "helper").unwrap();
        assert!(g.edges[top].contains(&own));
        assert!(
            !g.edges[top].contains(&other),
            "self-call must not leak to another impl with the same method name"
        );
    }

    #[test]
    fn bare_method_over_approximates() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub fn go(b: crate::B) { b.helper(); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "pub struct B;\nimpl B {\n    pub fn helper(&self) {}\n}\npub struct C;\nimpl C {\n    pub fn helper(&self) {}\n}\n",
            ),
        ]);
        let go = g.find("crates/core/src/a.rs", "go").unwrap();
        assert_eq!(g.edges[go].len(), 2, "both helpers are candidates");
    }

    #[test]
    fn module_path_calls_need_suffix_match() {
        let g = graph(&[
            (
                "crates/core/src/search/serve.rs",
                "pub fn run() { select::pick(); other::pick(); }\n",
            ),
            ("crates/core/src/search/select.rs", "pub fn pick() {}\n"),
        ]);
        let run = g.find("crates/core/src/search/serve.rs", "run").unwrap();
        let pick = g.find("crates/core/src/search/select.rs", "pick").unwrap();
        assert_eq!(g.edges[run], [pick], "other::pick must not match");
    }

    #[test]
    fn type_qualified_calls_bind_to_impl() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub struct A;\nimpl A {\n    pub fn new() -> A { A }\n}\npub fn mk() { let _ = A::new(); let _ = Vec::new(); }\n",
        )]);
        let mk = g.find("crates/core/src/a.rs", "mk").unwrap();
        let new = g.find("crates/core/src/a.rs", "new").unwrap();
        assert_eq!(g.edges[mk], [new], "std Vec::new contributes no edge");
    }

    #[test]
    fn macro_names_create_no_edges() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub fn json() {}\npub fn go() { let _ = format!(\"x\"); json();\n}\n",
        )]);
        let go = g.find("crates/core/src/a.rs", "go").unwrap();
        let json = g.find("crates/core/src/a.rs", "json").unwrap();
        assert_eq!(g.edges[go], [json], "format! is not a call to fn format");
    }

    #[test]
    fn boundary_paths_are_marked() {
        let g = graph(&[
            ("crates/obs/src/lib.rs", "pub fn span() {}\n"),
            ("crates/core/src/plan.rs", "pub fn run_plan() {}\n"),
            ("crates/core/src/search/serve.rs", "pub fn query() {}\n"),
        ]);
        let by_path = |p: &str| {
            g.nodes
                .iter()
                .find(|n| n.path == p)
                .map(|n| n.is_boundary)
                .unwrap()
        };
        assert!(by_path("crates/obs/src/lib.rs"));
        assert!(by_path("crates/core/src/plan.rs"));
        assert!(!by_path("crates/core/src/search/serve.rs"));
    }

    #[test]
    fn exports_are_deterministic_and_well_formed() {
        let files: &[(&str, &str)] = &[(
            "crates/core/src/a.rs",
            "pub fn a() { b(); }\npub fn b() { x.unwrap(); }\n",
        )];
        let g1 = graph(files);
        let g2 = graph(files);
        assert_eq!(g1.to_json(), g2.to_json());
        assert_eq!(g1.to_dot(), g2.to_dot());
        let v: serde_json::Value = serde_json::from_str(&g1.to_json()).unwrap();
        assert!(v["nodes"].as_array().unwrap().len() == 2);
        assert_eq!(v["edges"][0]["from"], "core::a::a");
        assert_eq!(v["edges"][0]["to"], "core::a::b");
        let b = v["nodes"]
            .as_array()
            .unwrap()
            .iter()
            .find(|n| n["id"] == "core::a::b")
            .unwrap();
        assert_eq!(b["facts"][0], "may-panic");
    }
}
