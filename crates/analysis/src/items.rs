//! Lightweight item extraction: `mod` / `impl` / `trait` / `fn`
//! structure recovered from the token stream, no `syn`.
//!
//! This is the front half of the interprocedural layer. It does not
//! try to be a Rust parser — it tracks a scope stack keyed to brace
//! depth and recognizes item headers by keyword, which is enough to
//! attribute every function body to a (module path, impl type, name)
//! triple. The documented approximations:
//!
//! - Generic parameters are skipped by angle-bracket matching; const
//!   generic *default expressions* containing braces would desync the
//!   scan (none exist in this workspace, and the self-check test keeps
//!   it that way).
//! - An impl's self type is the last path segment of the first type
//!   path after `for` (or after the generics when there is no `for`),
//!   so `impl fmt::Display for Window` registers methods under
//!   `Window` and blanket impls register under the last named segment.
//! - Macro invocations and definitions with brace bodies
//!   (`thread_local! { … }`, `macro_rules! … { … }`) are opaque: no
//!   items are extracted from inside them, so macro fragment grammars
//!   cannot fabricate phantom functions.
//! - `#[cfg(test)]` / `#[test]` functions are extracted but flagged
//!   `is_test`; the call-graph builder drops them.

use crate::scanner::{is_keyword, SourceFile, Tok, TokKind};

/// One `fn` item attributed to its lexical scope.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (raw identifiers keep their `r#` framing).
    pub name: String,
    /// Innermost enclosing `impl`/`trait` self type, if any.
    pub impl_type: Option<String>,
    /// Inline `mod` names enclosing the item, outermost first. File
    /// modules are not included — the call-graph builder derives those
    /// from the path.
    pub inline_mods: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True for `#[cfg(test)]` / `#[test]` items.
    pub is_test: bool,
    /// Token-index range of the body `{ … }` braces, inclusive.
    /// `None` for bodiless signatures (trait requirements, externs).
    pub body: Option<(usize, usize)>,
}

#[derive(Debug, Clone)]
enum ScopeKind {
    Mod(String),
    ImplOrTrait(String),
    Anon,
}

/// Tokens that put a following `impl` in *type* position
/// (`-> impl Iterator`, `x: impl Fn()`, …) rather than item position.
const TYPE_POS_PREV: &[&str] = &["->", "(", ",", ":", "=", "<", "&", "+", "|", "dyn", "where"];

fn text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}

/// Extract every `fn` item in the file, in source order.
pub fn extract_items(file: &SourceFile) -> Vec<FnItem> {
    let toks = &file.tokens;
    let mut items = Vec::new();
    let mut stack: Vec<ScopeKind> = Vec::new();
    let mut pending: Option<ScopeKind> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => stack.push(pending.take().unwrap_or(ScopeKind::Anon)),
                "}" => {
                    stack.pop();
                }
                ";" => pending = None,
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            // Opaque macro body: `ident ! { … }` or
            // `macro_rules! name { … }` — jump past it.
            if text(toks, i + 1) == "!" {
                let open = if text(toks, i + 2) == "{" {
                    Some(i + 2)
                } else if t.text == "macro_rules" && text(toks, i + 3) == "{" {
                    Some(i + 3)
                } else {
                    None
                };
                if let Some(open) = open {
                    if let Some(close) = matching_brace(toks, open) {
                        i = close + 1;
                        continue;
                    }
                }
            }
            let named_by_next = |toks: &[Tok]| {
                toks.get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && !is_keyword(&n.text))
            };
            match t.text.as_str() {
                "mod" if named_by_next(toks) => {
                    pending = Some(ScopeKind::Mod(toks[i + 1].text.clone()));
                }
                "impl" => {
                    let prev = if i == 0 { "" } else { text(toks, i - 1) };
                    if !TYPE_POS_PREV.contains(&prev) {
                        if let Some(ty) = parse_impl_header(toks, i) {
                            pending = Some(ScopeKind::ImplOrTrait(ty));
                        }
                    }
                }
                "trait" if named_by_next(toks) => {
                    pending = Some(ScopeKind::ImplOrTrait(toks[i + 1].text.clone()));
                }
                "fn" => {
                    if let Some(item) = parse_fn(toks, i, &stack) {
                        items.push(item);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    items
}

/// Token index of the `}` matching the `{` at `open`, by depth count.
/// String/char contents are separate token kinds, so braces inside
/// literals never miscount.
pub(crate) fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Self type of the impl whose `impl` keyword sits at `i`.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip `<…>` generic parameters.
    if text(toks, j) == "<" {
        let mut depth = 0i32;
        while j < toks.len() {
            match text(toks, j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "{" | ";" | "" => return None,
                _ => {}
            }
            j += 1;
        }
    }
    // Find a `for` at bracket depth 0 before the body / where clause.
    let mut k = j;
    let mut for_at = None;
    let mut depth = 0i32;
    let end;
    loop {
        if k >= toks.len() {
            end = k;
            break;
        }
        match toks[k].text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "for" if depth == 0 => for_at = Some(k),
            "{" | "where" | ";" if depth <= 0 => {
                end = k;
                break;
            }
            _ => {}
        }
        k += 1;
    }
    // The self type: last plain path segment of the first type path.
    let start = for_at.map_or(j, |f| f + 1);
    let mut last: Option<String> = None;
    let mut m = start;
    while m < end {
        let t = &toks[m];
        match t.text.as_str() {
            "&" | "mut" | "dyn" | "::" => {}
            "<" | "{" | "where" | "(" => break,
            _ if t.kind == TokKind::Ident && !is_keyword(&t.text) => {
                last = Some(t.text.clone());
            }
            _ if t.kind == TokKind::Lifetime => {}
            _ => {
                if last.is_some() {
                    break;
                }
            }
        }
        m += 1;
    }
    last
}

/// Parse the `fn` item whose keyword sits at `i`.
fn parse_fn(toks: &[Tok], i: usize, stack: &[ScopeKind]) -> Option<FnItem> {
    let nt = toks.get(i + 1)?;
    if nt.kind != TokKind::Ident || is_keyword(&nt.text) {
        return None; // `fn(u32) -> u32` function-pointer type
    }
    // Walk the signature: the body is the first `{` at bracket depth 0;
    // a `;` there means a bodiless signature.
    let mut j = i + 2;
    let mut depth = 0i32;
    let mut body = None;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "{" if depth <= 0 => {
                body = Some((j, matching_brace(toks, j)?));
                break;
            }
            ";" if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let mut inline_mods = Vec::new();
    let mut impl_type = None;
    for s in stack {
        match s {
            ScopeKind::Mod(m) => inline_mods.push(m.clone()),
            ScopeKind::ImplOrTrait(t) => impl_type = Some(t.clone()),
            ScopeKind::Anon => {}
        }
    }
    Some(FnItem {
        name: nt.text.clone(),
        impl_type,
        inline_mods,
        line: toks[i].line,
        is_test: nt.in_test,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn items(src: &str) -> Vec<FnItem> {
        extract_items(&scan("crates/core/src/x.rs", src))
    }

    #[test]
    fn free_and_method_fns_are_attributed() {
        let got = items(
            "pub fn free() {}\n\
             impl Searcher {\n    pub fn query(&self) -> u32 { 1 }\n}\n\
             impl fmt::Display for Window {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<(String, Option<String>)> = got
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            [
                ("free".to_string(), None),
                ("query".to_string(), Some("Searcher".to_string())),
                ("fmt".to_string(), Some("Window".to_string())),
            ]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_self_type() {
        let got = items("impl<'a, T: Clone> Holder<'a, T> {\n    fn get(&self) {}\n}\n");
        assert_eq!(got[0].impl_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn type_position_impl_is_not_a_scope() {
        let got = items(
            "fn mk() -> impl Iterator<Item = u32> { std::iter::empty() }\n\
             fn take(f: impl Fn() -> u32) { f(); }\n",
        );
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|f| f.impl_type.is_none()));
    }

    #[test]
    fn inline_mods_and_nested_fns() {
        let got = items(
            "mod stats {\n    pub fn outer() {\n        fn inner() {}\n        inner();\n    }\n}\n",
        );
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "outer");
        assert_eq!(got[0].inline_mods, ["stats"]);
        assert_eq!(got[1].name, "inner");
        // inner's body nests strictly inside outer's.
        let (os, oe) = got[0].body.unwrap();
        let (is_, ie) = got[1].body.unwrap();
        assert!(os < is_ && ie < oe);
    }

    #[test]
    fn trait_decls_attribute_default_bodies() {
        let got =
            items("trait Rule {\n    fn id(&self) -> &str;\n    fn check(&self) -> u32 { 0 }\n}\n");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].body, None);
        assert!(got[1].body.is_some());
        assert_eq!(got[1].impl_type.as_deref(), Some("Rule"));
    }

    #[test]
    fn macro_bodies_are_opaque() {
        let got = items(
            "thread_local! {\n    static S: u32 = 0;\n}\n\
             macro_rules! gen {\n    () => { fn phantom() {} };\n}\n\
             fn real() {}\n",
        );
        let names: Vec<&str> = got.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn test_fns_are_flagged() {
        let got = items("fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n");
        assert_eq!(got.len(), 2);
        assert!(!got[0].is_test);
        assert!(got[1].is_test);
        assert_eq!(got[1].inline_mods, ["tests"]);
    }

    #[test]
    fn raw_identifier_fn_names_survive() {
        let got = items("fn r#loop() {}\n");
        assert_eq!(got[0].name, "r#loop");
    }

    #[test]
    fn fn_signature_with_generics_finds_body() {
        let got = items(
            "fn pick<T: Ord>(xs: &[T], cmp: impl Fn(&T, &T) -> bool) -> Option<&T> { xs.first() }\n",
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].body.is_some());
    }
}
