//! `litsearch-lint` — CLI driver for the `analysis` lint engine.
//!
//! Exit codes: `0` clean (or warn-only), `1` deny findings (or any
//! finding under `--deny-warnings`), `2` usage/engine error.

use analysis::rules::span_coverage;
use analysis::{all_rules, callgraph, discover_root, lint, LintConfig, Severity, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
litsearch-lint — static analysis for the litsearch workspace

USAGE:
    litsearch-lint [OPTIONS]

OPTIONS:
    --root PATH        workspace root (default: discovered from cwd)
    --format FMT       text | json | markdown   (default: text)
    --out FILE         write the report to FILE instead of stdout
    --deny-warnings    exit non-zero on warn-severity findings too
    --deny RULE        force RULE to deny severity
    --warn RULE        force RULE to warn severity
    --paths LIST       comma-separated workspace-relative .rs files:
                       fast mode, per-file token rules only (pre-commit)
    --emit-callgraph F write the workspace call graph to F
                       (.dot => Graphviz, anything else => JSON)
    --emit-registry F  write the span-name registry JSON to F
    --list-rules       print the rule catalogue and exit
    --help             this text
";

enum Format {
    Text,
    Json,
    Markdown,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    deny_warnings: bool,
    config: LintConfig,
    list_rules: bool,
    paths: Option<Vec<String>>,
    emit_callgraph: Option<PathBuf>,
    emit_registry: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        out: None,
        deny_warnings: false,
        config: LintConfig::default(),
        list_rules: false,
        paths: None,
        emit_callgraph: None,
        emit_registry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--root" => args.root = Some(PathBuf::from(value("--root")?)),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "markdown" => Format::Markdown,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--deny-warnings" => args.deny_warnings = true,
            "--deny" | "--warn" => {
                let rule = value(&arg)?;
                if !LintConfig::known_rule(&rule) {
                    return Err(format!("unknown rule `{rule}`; see --list-rules"));
                }
                let sev = if arg == "--deny" {
                    Severity::Deny
                } else {
                    Severity::Warn
                };
                args.config.overrides.push((rule, sev));
            }
            "--paths" => {
                let list: Vec<String> = value("--paths")?
                    .split(',')
                    .map(|p| p.trim().trim_start_matches("./").to_string())
                    .filter(|p| !p.is_empty())
                    .collect();
                if list.is_empty() {
                    return Err("--paths needs at least one path".to_string());
                }
                args.paths = Some(list);
                args.config.fast_only = true;
            }
            "--emit-callgraph" => args.emit_callgraph = Some(PathBuf::from(value(&arg)?)),
            "--emit-registry" => args.emit_registry = Some(PathBuf::from(value(&arg)?)),
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.paths.is_some() && (args.emit_callgraph.is_some() || args.emit_registry.is_some()) {
        return Err(
            "--emit-callgraph / --emit-registry need a full workspace scan; drop --paths"
                .to_string(),
        );
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if args.list_rules {
        for rule in all_rules() {
            println!(
                "{:<26} {:<5} {}",
                rule.id(),
                rule.default_severity().name(),
                rule.summary()
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            discover_root(&cwd).ok_or(
                "no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root",
            )?
        }
    };
    let ws = match &args.paths {
        Some(paths) => Workspace::from_root_filtered(&root, paths),
        None => Workspace::from_root(&root),
    }
    .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if let Some(path) = &args.emit_callgraph {
        let graph = callgraph::CallGraph::build(&ws);
        let rendered = if path.extension().is_some_and(|e| e == "dot") {
            graph.to_dot()
        } else {
            graph.to_json()
        };
        std::fs::write(path, rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("litsearch-lint: call graph written to {}", path.display());
    }
    if let Some(path) = &args.emit_registry {
        std::fs::write(path, span_coverage::registry_json(&ws))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "litsearch-lint: span registry written to {}",
            path.display()
        );
    }

    let report = lint(&ws, &args.config);

    let rendered = match args.format {
        Format::Text => report.to_text(),
        Format::Json => report.to_json(),
        Format::Markdown => report.to_markdown(),
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!("litsearch-lint: report written to {}", path.display());
        }
        None => print!("{rendered}"),
    }
    eprintln!("litsearch-lint: {}", report.summary());

    Ok(match report.exit_code(args.deny_warnings) {
        0 => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("litsearch-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
