//! `analysis` — the workspace's own static-analysis suite.
//!
//! A dependency-light lint engine that enforces the architectural
//! invariants the ordinary compiler cannot see: panic-free serving,
//! lock-free hot paths, totally-ordered float comparisons, wall-clock
//! confinement to telemetry, span-name agreement with the CI perf-gate
//! baselines, and hash-iteration determinism. Run it as
//!
//! ```text
//! cargo run -p analysis                # text report, exit 1 on deny
//! cargo run -p analysis -- --format json --deny-warnings
//! ```
//!
//! or via the installed binary name, `litsearch-lint`. See
//! [`rules`] for the rule catalogue, [`engine`] for suppression
//! semantics (`// lint:allow(rule-id, reason)`), and [`report`] for
//! the output formats.

pub mod callgraph;
pub mod engine;
pub mod items;
pub mod reach;
pub mod report;
pub mod rules;
pub mod scanner;

pub use engine::{discover_root, lint, LintConfig, Workspace};
pub use report::{Finding, LintReport, Severity};
pub use rules::{all_rules, Rule};
