//! Workspace loading, rule driving, and suppression accounting.
//!
//! The engine owns everything between "a directory on disk" and "a
//! [`LintReport`]":
//!
//! * walking the workspace for `.rs` files (skipping `target/`,
//!   `vendor/`, and `.git/`) and scanning each into tokens;
//! * loading the metrics baselines the span-drift rule cross-checks;
//! * running per-file rules (test-path files excluded) and
//!   workspace rules;
//! * honoring `// lint:allow(rule-id, reason)` directives — a
//!   directive silences matching findings on its own line and the
//!   next, must name a known rule, and must carry a reason; malformed
//!   or unused directives are themselves findings under the
//!   `lint-allow` meta-rule.

use crate::callgraph::CallGraph;
use crate::report::{Finding, LintReport, Severity, SuppressionUse};
use crate::rules::{all_rules, span_drift, RawFinding, Rule};
use crate::scanner::{scan, SourceFile};
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One metrics baseline, read (or not) from `results/`.
#[derive(Debug)]
pub struct Baseline {
    /// Workspace-relative path.
    pub path: String,
    /// File contents, or the read error. Errors are findings, not
    /// engine failures: a deleted baseline must fail the lint run.
    pub content: Result<String, String>,
}

/// Everything the rules look at.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned `.rs` files, sorted by path for deterministic reports.
    pub files: Vec<SourceFile>,
    /// The metrics baselines (see [`span_drift::BASELINE_FILES`]).
    pub baselines: Vec<Baseline>,
}

impl Workspace {
    /// Load a workspace from its root directory.
    pub fn from_root(root: &Path) -> io::Result<Self> {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for rel in paths {
            let src = fs::read_to_string(root.join(&rel))?;
            files.push(scan(&rel, &src));
        }
        let baselines = span_drift::BASELINE_FILES
            .iter()
            .map(|rel| Baseline {
                path: (*rel).to_string(),
                content: fs::read_to_string(root.join(rel)).map_err(|e| e.to_string()),
            })
            .collect();
        Ok(Self { files, baselines })
    }

    /// Load a workspace restricted to the given workspace-relative
    /// paths (`--paths` fast mode). Paths not found on disk are
    /// silently dropped: a changed-file list may name deleted files.
    pub fn from_root_filtered(root: &Path, keep: &[String]) -> io::Result<Self> {
        let mut ws = Self::from_root(root)?;
        let keep: BTreeSet<&str> = keep.iter().map(String::as_str).collect();
        ws.files.retain(|f| keep.contains(f.path.as_str()));
        Ok(ws)
    }

    /// Build a workspace from in-memory sources — the test seam.
    pub fn from_memory(sources: &[(&str, &str)], baselines: &[(&str, &str)]) -> Self {
        Self {
            files: sources.iter().map(|(p, s)| scan(p, s)).collect(),
            baselines: baselines
                .iter()
                .map(|(p, c)| Baseline {
                    path: (*p).to_string(),
                    content: Ok((*c).to_string()),
                })
                .collect(),
        }
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Severity overrides from the CLI (`--warn RULE` / `--deny RULE`).
#[derive(Debug, Default)]
pub struct LintConfig {
    /// (rule id, forced severity); later entries win.
    pub overrides: Vec<(String, Severity)>,
    /// `--paths` fast mode: only the per-file token rules run. The
    /// workspace-scoped rules (call-graph reachability, span
    /// registry/baseline checks) need every file to reach a verdict,
    /// so they are skipped and their suppressions are not stale-checked.
    pub fast_only: bool,
}

impl LintConfig {
    fn severity_for(&self, rule: &dyn Rule) -> Severity {
        self.overrides
            .iter()
            .rev()
            .find(|(id, _)| id == rule.id())
            .map_or_else(|| rule.default_severity(), |(_, sev)| *sev)
    }

    /// True when `id` names a registered rule (validates overrides).
    pub fn known_rule(id: &str) -> bool {
        all_rules().iter().any(|r| r.id() == id)
    }
}

/// Meta-rule id for problems with the suppression comments themselves.
pub const LINT_ALLOW_RULE: &str = "lint-allow";

/// Run every rule over the workspace and settle suppressions.
pub fn lint(ws: &Workspace, config: &LintConfig) -> LintReport {
    // One call graph serves every interprocedural rule; fast mode
    // (partial workspace) cannot build a truthful one, so it skips
    // the workspace-scoped rules altogether.
    let graph = if config.fast_only {
        None
    } else {
        Some(CallGraph::build(ws))
    };
    let mut raw: Vec<(&'static str, Severity, RawFinding)> = Vec::new();
    for rule in all_rules() {
        let severity = config.severity_for(rule.as_ref());
        for file in &ws.files {
            if file.is_test_path() || !rule.applies_to(&file.path) {
                continue;
            }
            for f in rule.check_file(file) {
                raw.push((rule.id(), severity, f));
            }
        }
        if let Some(graph) = &graph {
            for f in rule.check_workspace(ws) {
                raw.push((rule.id(), severity, f));
            }
            for f in rule.check_graph(ws, graph) {
                raw.push((rule.id(), severity, f));
            }
        }
    }

    // Suppression pass. Directive index: (path, rule) -> directives.
    let mut report = LintReport {
        files_scanned: ws.files.len(),
        ..LintReport::default()
    };
    let mut used: HashMap<(String, u32), (String, bool)> = HashMap::new();
    for file in &ws.files {
        for d in &file.allows {
            let valid = LintConfig::known_rule(&d.rule) && !d.reason.trim().is_empty();
            used.insert((file.path.clone(), d.line), (d.rule.clone(), !valid));
            if !LintConfig::known_rule(&d.rule) {
                report.findings.push(Finding {
                    rule: LINT_ALLOW_RULE.to_string(),
                    severity: Severity::Deny,
                    path: file.path.clone(),
                    line: d.line,
                    col: 0,
                    message: format!(
                        "lint:allow names unknown rule `{}`; run --list-rules for valid ids",
                        d.rule
                    ),
                    chain: Vec::new(),
                });
            } else if d.reason.trim().is_empty() {
                report.findings.push(Finding {
                    rule: LINT_ALLOW_RULE.to_string(),
                    severity: Severity::Deny,
                    path: file.path.clone(),
                    line: d.line,
                    col: 0,
                    message: format!(
                        "lint:allow({}) has no reason; suppressions must justify themselves",
                        d.rule
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    for (rule_id, severity, f) in raw {
        let directive = ws
            .files
            .iter()
            .find(|file| file.path == f.path)
            .and_then(|file| {
                file.allows.iter().find(|d| {
                    d.rule == rule_id
                        && !d.reason.trim().is_empty()
                        && (d.line == f.line || d.line + 1 == f.line)
                })
            });
        if let Some(d) = directive {
            if let Some((_, was_used)) = used.get_mut(&(f.path.clone(), d.line)) {
                if !*was_used {
                    *was_used = true;
                    report.suppressions.push(SuppressionUse {
                        rule: rule_id.to_string(),
                        path: f.path.clone(),
                        line: d.line,
                        reason: d.reason.clone(),
                    });
                }
            }
            continue;
        }
        report.findings.push(Finding {
            rule: rule_id.to_string(),
            severity,
            path: f.path,
            line: f.line,
            col: f.col,
            message: f.message,
            chain: f.chain,
        });
    }

    // Valid directives that silenced nothing are stale — warn (which
    // --deny-warnings turns into a failure) so they get cleaned up
    // once the underlying code is fixed. Fast mode skipped the
    // workspace-scoped rules, so their directives get no verdict.
    let workspace_rules: BTreeSet<&'static str> = all_rules()
        .iter()
        .filter(|r| r.workspace_scoped())
        .map(|r| r.id())
        .collect();
    for ((path, line), (rule, was_used)) in &used {
        if *was_used {
            continue;
        }
        if config.fast_only && workspace_rules.contains(rule.as_str()) {
            continue;
        }
        report.findings.push(Finding {
            rule: LINT_ALLOW_RULE.to_string(),
            severity: Severity::Warn,
            path: path.clone(),
            line: *line,
            col: 0,
            message: format!(
                "lint:allow({rule}) on line {line} suppresses nothing; remove the stale directive"
            ),
            chain: Vec::new(),
        });
    }

    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    report
        .suppressions
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Ascend from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the binary finds the root when run
/// from a crate subdirectory.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN_BASELINE: &str = r#"{"spans": []}"#;
    const CLEAN_SERIES_BASELINE: &str = r#"{"series": []}"#;

    fn lint_mem(sources: &[(&str, &str)]) -> LintReport {
        let ws = Workspace::from_memory(
            sources,
            &[
                ("results/metrics_baseline.json", CLEAN_BASELINE),
                ("results/metrics_prepare_baseline.json", CLEAN_BASELINE),
                ("results/metrics_warm_baseline.json", CLEAN_BASELINE),
                ("results/quality_baseline.json", CLEAN_SERIES_BASELINE),
            ],
        );
        lint(&ws, &LintConfig::default())
    }

    #[test]
    fn finding_surfaces_with_rule_and_position() {
        let r = lint_mem(&[(
            "crates/core/src/search/serve.rs",
            "fn f() {\n    x.unwrap();\n}\n",
        )]);
        assert_eq!(r.deny_count(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.rule, "no-panic-serving");
        assert_eq!((f.line, f.col), (2, 7));
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let trailing = "fn f() {\n    x.unwrap(); // lint:allow(no-panic-serving, demo)\n}\n";
        let leading = "fn f() {\n    // lint:allow(no-panic-serving, demo)\n    x.unwrap();\n}\n";
        for src in [trailing, leading] {
            let r = lint_mem(&[("crates/core/src/search/serve.rs", src)]);
            assert_eq!(r.deny_count(), 0, "{:?}", r.findings);
            assert_eq!(r.suppressions.len(), 1);
            assert_eq!(r.suppressions[0].reason, "demo");
        }
    }

    #[test]
    fn allow_without_reason_is_a_deny_finding_and_does_not_suppress() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(no-panic-serving)\n}\n";
        let r = lint_mem(&[("crates/core/src/search/serve.rs", src)]);
        // The unwrap still fires AND the reasonless directive fires.
        assert_eq!(r.deny_count(), 2, "{:?}", r.findings);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == LINT_ALLOW_RULE && f.message.contains("no reason")));
    }

    #[test]
    fn allow_for_unknown_rule_is_a_deny_finding() {
        let src = "// lint:allow(no-such-rule, because)\nfn f() {}\n";
        let r = lint_mem(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(r.deny_count(), 1);
        assert!(r.findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn stale_allow_is_a_warn_finding() {
        let src = "// lint:allow(no-panic-serving, was fixed)\nfn f() {}\n";
        let r = lint_mem(&[("crates/core/src/search/serve.rs", src)]);
        assert_eq!(r.deny_count(), 0);
        assert_eq!(r.warn_count(), 1);
        assert!(r.findings[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn allow_does_not_cross_rules() {
        let src =
            "fn f(m: &Mutex<u8>) {\n    m.lock(); // lint:allow(no-panic-serving, wrong rule)\n}\n";
        let r = lint_mem(&[("crates/core/src/search/serve.rs", src)]);
        // no-locks findings (Mutex + .lock()) survive; directive is stale.
        assert!(r.findings.iter().any(|f| f.rule == "no-locks-on-hot-path"));
        assert!(r.findings.iter().any(|f| f.rule == LINT_ALLOW_RULE));
    }

    #[test]
    fn severity_override_flips_exit_behavior() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        let ws = Workspace::from_memory(
            &[("crates/core/src/search/serve.rs", src)],
            &[
                ("results/metrics_baseline.json", CLEAN_BASELINE),
                ("results/metrics_prepare_baseline.json", CLEAN_BASELINE),
                ("results/metrics_warm_baseline.json", CLEAN_BASELINE),
                ("results/quality_baseline.json", CLEAN_SERIES_BASELINE),
            ],
        );
        let cfg = LintConfig {
            overrides: vec![("no-panic-serving".to_string(), Severity::Warn)],
            fast_only: false,
        };
        let r = lint(&ws, &cfg);
        assert_eq!(r.deny_count(), 0);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.exit_code(false), 0);
        assert_eq!(r.exit_code(true), 1);
    }

    #[test]
    fn test_path_files_are_skipped_for_per_file_rules() {
        let r = lint_mem(&[(
            "crates/core/tests/serve_test.rs",
            "fn f() { x.unwrap(); a.partial_cmp(&b); }\n",
        )]);
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
    }

    #[test]
    fn findings_are_sorted_and_deterministic() {
        let src = "fn f() {\n    b.unwrap();\n    a.unwrap();\n}\n";
        let r1 = lint_mem(&[("crates/core/src/search/serve.rs", src)]);
        let r2 = lint_mem(&[("crates/core/src/search/serve.rs", src)]);
        let pos1: Vec<_> = r1.findings.iter().map(|f| (f.line, f.col)).collect();
        let pos2: Vec<_> = r2.findings.iter().map(|f| (f.line, f.col)).collect();
        assert_eq!(pos1, pos2);
        assert_eq!(pos1, vec![(2, 7), (3, 7)]);
    }
}
