//! Findings and the three report renderers (text, JSON, markdown).

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported; fails only under `--deny-warnings`.
    Warn,
    /// Fails the lint run.
    Deny,
}

impl Severity {
    /// Lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Warn => "warn",
            Self::Deny => "deny",
        }
    }
}

/// One hop of an interprocedural witness chain.
#[derive(Debug, Clone)]
pub struct ChainStep {
    /// Display symbol, e.g. `Searcher::query`.
    pub symbol: String,
    /// File declaring the function.
    pub path: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`no-panic-serving`, …).
    pub rule: String,
    /// Effective severity (defaults + overrides applied).
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// 1-based column (0 for whole-file findings).
    pub col: u32,
    /// Human explanation, invariant first.
    pub message: String,
    /// Witness call chain, root entrypoint first (empty for
    /// token-level findings).
    pub chain: Vec<ChainStep>,
}

/// A suppression that matched a finding.
#[derive(Debug, Clone)]
pub struct SuppressionUse {
    /// Rule suppressed.
    pub rule: String,
    /// File containing the directive.
    pub path: String,
    /// Line of the `lint:allow` comment.
    pub line: u32,
    /// The stated justification.
    pub reason: String,
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Suppressions that actually silenced a finding.
    pub suppressions: Vec<SuppressionUse>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// Process exit code: 0 clean, 1 on deny findings (or any finding
    /// under `deny_warnings`).
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        let failing = if deny_warnings {
            self.findings.len()
        } else {
            self.deny_count()
        };
        i32::from(failing > 0)
    }

    /// One-line summary (stderr companion to any format).
    pub fn summary(&self) -> String {
        format!(
            "{} deny, {} warn, {} suppressed, {} files scanned",
            self.deny_count(),
            self.warn_count(),
            self.suppressions.len(),
            self.files_scanned
        )
    }

    /// `path:line:col: severity[rule] message` per finding.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {}[{}] {}\n",
                f.path,
                f.line,
                f.col,
                f.severity.name(),
                f.rule,
                f.message
            ));
            if !f.chain.is_empty() {
                let hops: Vec<String> = f
                    .chain
                    .iter()
                    .map(|c| format!("{} ({}:{})", c.symbol, c.path, c.line))
                    .collect();
                out.push_str(&format!("    call chain: {}\n", hops.join(" -> ")));
            }
        }
        for s in &self.suppressions {
            out.push_str(&format!(
                "{}:{}: suppressed[{}] {}\n",
                s.path, s.line, s.rule, s.reason
            ));
        }
        out.push_str(&format!("litsearch-lint: {}\n", self.summary()));
        out
    }

    /// Machine-readable form for the CI artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let chain: Vec<String> = f
                .chain
                .iter()
                .map(|c| {
                    format!(
                        "{{\"symbol\": {}, \"path\": {}, \"line\": {}}}",
                        json_str(&c.symbol),
                        json_str(&c.path),
                        c.line
                    )
                })
                .collect();
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"chain\": [{}]}}",
                json_str(&f.rule),
                json_str(f.severity.name()),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message),
                chain.join(", ")
            ));
        }
        out.push_str("\n  ],\n  \"suppressions\": [");
        for (i, s) in self.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&s.rule),
                json_str(&s.path),
                s.line,
                json_str(&s.reason)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"deny\": {},\n  \"warn\": {},\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
            self.deny_count(),
            self.warn_count(),
            self.suppressions.len(),
            self.files_scanned
        ));
        out
    }

    /// A markdown table, for PR comments / summaries.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# litsearch-lint report\n\n");
        out.push_str(&format!("**{}**\n\n", self.summary()));
        if !self.findings.is_empty() {
            out.push_str("| severity | rule | location | message |\n|---|---|---|---|\n");
            for f in &self.findings {
                let mut message = f.message.replace('|', "\\|");
                if !f.chain.is_empty() {
                    let hops: Vec<String> =
                        f.chain.iter().map(|c| format!("`{}`", c.symbol)).collect();
                    message.push_str(&format!("<br>chain: {}", hops.join(" → ")));
                }
                out.push_str(&format!(
                    "| {} | `{}` | `{}:{}:{}` | {} |\n",
                    f.severity.name(),
                    f.rule,
                    f.path,
                    f.line,
                    f.col,
                    message
                ));
            }
            out.push('\n');
        }
        if !self.suppressions.is_empty() {
            out.push_str("## Suppressions in effect\n\n");
            for s in &self.suppressions {
                out.push_str(&format!(
                    "- `{}` at `{}:{}` — {}\n",
                    s.rule, s.path, s.line, s.reason
                ));
            }
        }
        out
    }
}

/// Minimal JSON string escaping, shared by the report and the
/// call-graph / registry exporters.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "no-panic-serving".to_string(),
                severity: Severity::Deny,
                path: "crates/core/src/search/serve.rs".to_string(),
                line: 3,
                col: 7,
                message: "`unwrap()` on the serving path".to_string(),
                chain: vec![ChainStep {
                    symbol: "Searcher::query".to_string(),
                    path: "crates/core/src/search/serve.rs".to_string(),
                    line: 149,
                }],
            }],
            suppressions: vec![SuppressionUse {
                rule: "float-total-order".to_string(),
                path: "crates/eval/src/stats.rs".to_string(),
                line: 9,
                reason: "exact-zero sentinel".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn exit_codes_respect_severity() {
        let r = sample();
        assert_eq!(r.exit_code(false), 1);
        let warn_only = LintReport {
            findings: vec![Finding {
                severity: Severity::Warn,
                ..r.findings[0].clone()
            }],
            suppressions: Vec::new(),
            files_scanned: 1,
        };
        assert_eq!(warn_only.exit_code(false), 0);
        assert_eq!(warn_only.exit_code(true), 1);
        let clean = LintReport::default();
        assert_eq!(clean.exit_code(true), 0);
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let r = sample();
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let findings = v.get("findings").and_then(|f| f.as_array()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("rule").and_then(|r| r.as_str()),
            Some("no-panic-serving")
        );
        assert_eq!(v.get("deny").and_then(|d| d.as_f64()), Some(1.0));
    }

    #[test]
    fn text_and_markdown_mention_the_finding() {
        let r = sample();
        assert!(r.to_text().contains("serve.rs:3:7"));
        assert!(r.to_markdown().contains("no-panic-serving"));
        assert!(r.to_markdown().contains("Suppressions"));
    }

    #[test]
    fn json_escaping_handles_quotes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
