//! Capability reachability over the call graph.
//!
//! ## Capability lattice
//!
//! Each function gets a set of *leaf facts* from its own body; the
//! interprocedural property is the union over every function reachable
//! from a root, i.e. the transitive closure in the powerset lattice of
//! `{may-panic, takes-lock, allocates, reads-wallclock}` — monotone,
//! so one multi-source BFS per root set suffices and cycles terminate
//! (a node is expanded at most once).
//!
//! ## Leaf facts vs the file-scoped token rules
//!
//! The fact lists here are deliberately *narrower* than the per-file
//! rules, because an interprocedural finding must hold for every
//! calling context:
//!
//! - panic: `.unwrap()` / `.expect()` and the panicking macros.
//!   Unchecked indexing is *excluded* — it stays the file-scoped
//!   `no-panic-serving` rule's domain, where the serving modules'
//!   dense-ID invariants are in view.
//! - lock: lock/once-cell types and their blocking methods. `RefCell`
//!   / `Cell` / `UnsafeCell` are excluded (interior mutability cannot
//!   block another thread; the thread-local scratch pool is the
//!   sanctioned pattern), as are bare `.read()` / `.write()` (mostly
//!   `io::Read`/`Write` at this distance from the declaring file).
//! - alloc: allocating macros, allocating method names, and
//!   `Type::new`-style constructors of owning containers.
//! - wallclock: `Instant::now` / `SystemTime::now`. Propagated and
//!   exported for the call-graph artifact; no interprocedural rule
//!   fires on it today (`no-wallclock-outside-obs` already bounds it
//!   per file).

use crate::callgraph::CallGraph;
use crate::scanner::{Tok, TokKind};

/// What a function may do, directly or transitively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Capability {
    Panic,
    Lock,
    Alloc,
    Wallclock,
}

impl Capability {
    /// Stable label used in reports and exports.
    pub fn label(self) -> &'static str {
        match self {
            Capability::Panic => "may-panic",
            Capability::Lock => "takes-lock",
            Capability::Alloc => "allocates",
            Capability::Wallclock => "reads-wallclock",
        }
    }
}

/// One leaf fact: a token-level operation granting a capability.
#[derive(Debug, Clone)]
pub struct Fact {
    pub cap: Capability,
    /// The operation, e.g. `.unwrap()` or `vec!`.
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// Serve entrypoints for the panic / lock rules: the public query
/// surface, the scratch-pool kernel it drives, and the HTTP request
/// handlers of `crates/serve` (which run on worker threads where a
/// panic would tear down the connection mid-response). Missing
/// entries (fixture workspaces) simply contribute no roots.
pub const SERVE_ROOTS: &[(&str, &str)] = &[
    ("crates/core/src/search/serve.rs", "query"),
    ("crates/core/src/search/serve.rs", "query_with_stats"),
    ("crates/core/src/search/serve.rs", "search"),
    ("crates/core/src/search/serve.rs", "search_with_stats"),
    ("crates/core/src/search/exec.rs", "search"),
    ("crates/core/src/search/exec.rs", "search_with_stats"),
    ("crates/core/src/search/scratch.rs", "with_scratch"),
    ("crates/core/src/search/scratch.rs", "begin"),
    ("crates/core/src/search/scratch.rs", "gather_candidates"),
    ("crates/core/src/search/scratch.rs", "score_context"),
    ("crates/core/src/search/scratch.rs", "ranked"),
    ("crates/serve/src/handler.rs", "handle_request"),
    ("crates/serve/src/handler.rs", "handle_search"),
    ("crates/serve/src/handler.rs", "handle_healthz"),
    ("crates/serve/src/handler.rs", "handle_metrics"),
    ("crates/serve/src/handler.rs", "handle_quality"),
];

/// Roots for `alloc-on-hot-path`: only the per-candidate kernel. The
/// surrounding plumbing (query parsing, result assembly, `ranked()`)
/// allocates its output by design; the invariant worth machine-checking
/// is that the O(candidates) inner loops run out of the scratch pool.
pub const ALLOC_ROOTS: &[(&str, &str)] = &[
    ("crates/core/src/search/scratch.rs", "gather_candidates"),
    ("crates/core/src/search/scratch.rs", "score_context"),
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
const LOCK_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "lazy_static",
];
const LOCK_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "wait",
    "get_or_init",
    "get_or_insert_with",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_METHODS: &[&str] = &[
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "sort",
    "sort_by",
    "sort_by_key",
    "join",
    "repeat",
];
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "Arc",
    "Rc",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

fn text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}

/// Leaf facts in one body range (nested fn ranges skipped).
pub fn extract_facts(toks: &[Tok], bs: usize, be: usize, nested: &[(usize, usize)]) -> Vec<Fact> {
    let mut out = Vec::new();
    let mut i = bs;
    while i <= be.min(toks.len().saturating_sub(1)) {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.in_test {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let prev = if i == 0 { "" } else { text(toks, i - 1) };
        let next = text(toks, i + 1);
        let push = |out: &mut Vec<Fact>, cap, what: String| {
            out.push(Fact {
                cap,
                what,
                line: t.line,
                col: t.col,
            })
        };
        if next == "!" && PANIC_MACROS.contains(&name) {
            push(&mut out, Capability::Panic, format!("{name}!"));
        } else if next == "!" && ALLOC_MACROS.contains(&name) {
            push(&mut out, Capability::Alloc, format!("{name}!"));
        } else if prev == "." && next == "(" {
            if PANIC_METHODS.contains(&name) {
                push(&mut out, Capability::Panic, format!(".{name}()"));
            } else if LOCK_METHODS.contains(&name) {
                push(&mut out, Capability::Lock, format!(".{name}()"));
            } else if ALLOC_METHODS.contains(&name) {
                push(&mut out, Capability::Alloc, format!(".{name}()"));
            }
        } else if prev == "::" && next == "(" {
            let qual = if i >= 2 { text(toks, i - 2) } else { "" };
            if ALLOC_TYPES.contains(&qual) && ALLOC_CTORS.contains(&name) {
                push(&mut out, Capability::Alloc, format!("{qual}::{name}()"));
            } else if CLOCK_TYPES.contains(&qual) && name == "now" {
                push(&mut out, Capability::Wallclock, format!("{qual}::now()"));
            }
        } else if LOCK_TYPES.contains(&name) && prev != "." {
            push(&mut out, Capability::Lock, name.to_string());
        }
        i += 1;
    }
    out
}

/// Multi-source BFS result: predecessor tree over reachable nodes.
pub struct ReachResult {
    /// `pred[n]`: the node we reached `n` from (`n` itself for roots);
    /// `None` when unreachable.
    pub pred: Vec<Option<usize>>,
    /// The roots actually present in this graph, sorted.
    pub roots: Vec<usize>,
}

/// BFS from `root_specs` (exact-path + fn-name pairs), never entering
/// boundary nodes. Deterministic: roots and adjacency are sorted.
pub fn reachable_from(graph: &CallGraph, root_specs: &[(&str, &str)]) -> ReachResult {
    let mut roots: Vec<usize> = Vec::new();
    for (k, n) in graph.nodes.iter().enumerate() {
        if n.is_boundary {
            continue;
        }
        if root_specs.iter().any(|(p, f)| n.path == *p && n.name == *f) {
            roots.push(k);
        }
    }
    let mut pred: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = Default::default();
    for &r in &roots {
        pred[r] = Some(r);
        queue.push_back(r);
    }
    while let Some(n) = queue.pop_front() {
        for &m in &graph.edges[n] {
            if pred[m].is_some() || graph.nodes[m].is_boundary {
                continue;
            }
            pred[m] = Some(n);
            queue.push_back(m);
        }
    }
    ReachResult { pred, roots }
}

impl ReachResult {
    /// Witness chain root → … → `node` (node indices), or empty when
    /// unreachable.
    pub fn witness(&self, node: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut cur = node;
        loop {
            chain.push(cur);
            match self.pred[cur] {
                Some(p) if p != cur => cur = p,
                Some(_) => break,
                None => return Vec::new(),
            }
            if chain.len() > self.pred.len() {
                return Vec::new(); // defensive: corrupt pred tree
            }
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::engine::Workspace;
    use crate::scanner::scan;

    fn facts_of(src: &str) -> Vec<(Capability, String)> {
        let f = scan("crates/core/src/x.rs", src);
        extract_facts(&f.tokens, 0, f.tokens.len().saturating_sub(1), &[])
            .into_iter()
            .map(|f| (f.cap, f.what))
            .collect()
    }

    #[test]
    fn leaf_facts_cover_the_lattice() {
        let got = facts_of(
            "fn f() {\n    x.unwrap();\n    let m = Mutex::new(0);\n    let v = vec![1];\n    let t = Instant::now();\n}\n",
        );
        let caps: Vec<Capability> = got.iter().map(|(c, _)| *c).collect();
        assert!(caps.contains(&Capability::Panic));
        assert!(caps.contains(&Capability::Lock));
        assert!(caps.contains(&Capability::Alloc));
        assert!(caps.contains(&Capability::Wallclock));
    }

    #[test]
    fn refcell_and_indexing_are_not_interprocedural_facts() {
        let got = facts_of(
            "fn f(xs: &[u32]) -> u32 {\n    let c = RefCell::new(0);\n    let r = c.borrow_mut();\n    xs[0]\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn sort_unstable_is_not_an_alloc_fact() {
        let got = facts_of("fn f(xs: &mut [u32]) {\n    xs.sort_unstable();\n    xs.sort_unstable_by(|a, b| a.cmp(b));\n}\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn bfs_skips_boundary_and_terminates_on_cycles() {
        let ws = Workspace::from_memory(
            &[
                (
                    "crates/core/src/search/serve.rs",
                    "impl Searcher {\n    pub fn query(&self) { a::step(); obs::emit(); }\n}\n",
                ),
                (
                    "crates/core/src/a.rs",
                    "pub fn step() { other(); }\npub fn other() { step(); }\n",
                ),
                ("crates/obs/src/lib.rs", "pub fn emit() { x.lock(); }\n"),
            ],
            &[],
        );
        let g = CallGraph::build(&ws);
        let r = reachable_from(&g, SERVE_ROOTS);
        let step = g.find("crates/core/src/a.rs", "step").unwrap();
        let other = g.find("crates/core/src/a.rs", "other").unwrap();
        let emit = g.find("crates/obs/src/lib.rs", "emit").unwrap();
        assert!(r.pred[step].is_some());
        assert!(r.pred[other].is_some());
        assert!(r.pred[emit].is_none(), "obs is behind the boundary");
        let chain = r.witness(other);
        assert_eq!(chain.len(), 3, "query -> step -> other");
    }
}
