//! A line/column-aware token scanner for Rust source.
//!
//! Deliberately *not* a parser: the rules in this crate only need a
//! faithful token stream — identifiers, string literals, numbers, and
//! punctuation — with comments stripped and three pieces of side
//! information preserved:
//!
//! 1. **Suppression directives**: `// lint:allow(rule-id, reason)`
//!    comments are collected (not discarded) so the engine can honor
//!    them. A directive without a reason is itself reported.
//! 2. **Test regions**: tokens under a `#[cfg(test)]` or `#[test]`
//!    item are flagged `in_test`, so rules about production invariants
//!    skip assertions and unwraps that belong to tests.
//! 3. **String contents**: literals become [`TokKind::Str`] tokens
//!    carrying their unescaped-enough text, which is what the
//!    span-name-drift rule matches baseline span names against.
//!
//! No `syn`, no proc-macro machinery: the scanner is a few hundred
//! lines of `char` iteration, which keeps the lint suite buildable in
//! the offline, vendored-deps-only environment.

/// Token classification. Coarse on purpose: rules match identifier
/// text and local token patterns, not grammar productions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `let`, `Mutex`, …).
    Ident,
    /// String literal (regular, raw, or byte); `text` is the contents
    /// without quotes or the `r#` framing.
    Str,
    /// Character literal (`'x'`); `text` excludes the quotes.
    Char,
    /// Numeric literal, suffix included (`42`, `0.5`, `1e-9`, `2f64`).
    Num,
    /// Lifetime (`'a`), text without the leading quote.
    Lifetime,
    /// Punctuation. Multi-char operators the rules care about
    /// (`::`, `==`, `!=`, `<=`, `>=`, `->`, `=>`, `..`, `&&`, `||`)
    /// come through as a single token.
    Punct,
}

/// One scanned token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]`
    /// item (the attribute itself included).
    pub in_test: bool,
}

/// A parsed `// lint:allow(rule-id, reason)` comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule id being suppressed (may be empty on a malformed
    /// directive — the engine reports that).
    pub rule: String,
    /// The justification; required, the engine reports empty reasons.
    pub reason: String,
    /// 1-based line of the comment. The directive covers findings on
    /// this line and the next, so it works both trailing and leading.
    pub line: u32,
}

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Tok>,
    /// All suppression directives found in comments.
    pub allows: Vec<AllowDirective>,
}

impl SourceFile {
    /// True for files that are wholly test/bench/example code by
    /// location (`tests/`, `benches/`, `examples/` directories).
    /// Per-file rules skip these: the invariants under lint are
    /// production-path properties.
    pub fn is_test_path(&self) -> bool {
        let p = &self.path;
        let in_dir = |d: &str| p.starts_with(&format!("{d}/")) || p.contains(&format!("/{d}/"));
        in_dir("tests") || in_dir("benches") || in_dir("examples")
    }
}

/// Rust keywords that terminate an expression context; used by rules to
/// tell `foo[i]` (indexing) from `for x in [a, b]` (array literal).
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// True when a `Num` token spells a floating-point literal.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.contains('e')
        || text.contains('E')
        || text.ends_with("f32")
        || text.ends_with("f64")
}

/// Numeric value of a float literal, if parseable (suffix tolerated).
pub fn float_value(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('.');
    cleaned.parse::<f64>().ok()
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Scan one file into tokens + directives and mark test regions.
pub fn scan(path: &str, src: &str) -> SourceFile {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut tokens: Vec<Tok> = Vec::new();
    let mut allows: Vec<AllowDirective> = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                parse_allow(&text, line, &mut allows);
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                parse_allow(&text, line, &mut allows);
            }
            '"' => {
                let text = scan_string(&mut cur);
                push(&mut tokens, TokKind::Str, text, line, col);
            }
            '\'' => {
                scan_quote(&mut cur, &mut tokens, line, col);
            }
            c if c.is_ascii_digit() => {
                let text = scan_number(&mut cur);
                push(&mut tokens, TokKind::Num, text, line, col);
            }
            c if c.is_alphabetic() || c == '_' => {
                if let Some(text) = try_scan_raw_or_byte_string(&mut cur) {
                    push(&mut tokens, TokKind::Str, text, line, col);
                } else {
                    let mut text = String::new();
                    // A raw identifier (`r#fn`, `r#mod`) keeps its `r#`
                    // framing in the token text, so it can never be
                    // mistaken for the keyword it escapes — the item
                    // extractor keys `fn`/`mod`/`impl` off exact text.
                    if c == 'r'
                        && cur.peek(1) == Some('#')
                        && matches!(cur.peek(2), Some(c2) if c2.is_alphabetic() || c2 == '_')
                    {
                        text.push('r');
                        text.push('#');
                        cur.bump();
                        cur.bump();
                    }
                    while let Some(c) = cur.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    push(&mut tokens, TokKind::Ident, text, line, col);
                }
            }
            _ => {
                let text = scan_punct(&mut cur);
                push(&mut tokens, TokKind::Punct, text, line, col);
            }
        }
    }

    mark_test_regions(&mut tokens);
    SourceFile {
        path: path.replace('\\', "/"),
        tokens,
        allows,
    }
}

fn push(tokens: &mut Vec<Tok>, kind: TokKind, text: String, line: u32, col: u32) {
    tokens.push(Tok {
        kind,
        text,
        line,
        col,
        in_test: false,
    });
}

/// Parse `lint:allow(rule, reason)` out of one comment's text.
///
/// Only plain `//` / `/* */` comments whose content *starts with* the
/// directive count — doc comments (`///`, `//!`) and prose that merely
/// mentions the syntax are not suppressions.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<AllowDirective>) {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return;
    }
    let content = comment.trim_start_matches('/').trim_start();
    if !content.starts_with("lint:allow(") {
        return;
    }
    let rest = &content["lint:allow(".len()..];
    let body = match rest.find(')') {
        Some(end) => &rest[..end],
        None => rest, // malformed; still record so the engine can flag it
    };
    let (rule, reason) = match body.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim().trim_matches('"').trim()),
        None => (body.trim(), ""),
    };
    out.push(AllowDirective {
        rule: rule.to_string(),
        reason: reason.to_string(),
        line,
    });
}

/// Regular string literal; cursor sits on the opening quote.
fn scan_string(cur: &mut Cursor) -> String {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            '\\' => {
                cur.bump();
                if let Some(esc) = cur.bump() {
                    // Keep common escapes readable; exotic ones verbatim.
                    match esc {
                        'n' => text.push('\n'),
                        't' => text.push('\t'),
                        '\\' => text.push('\\'),
                        '"' => text.push('"'),
                        other => {
                            text.push('\\');
                            text.push(other);
                        }
                    }
                }
            }
            '"' => {
                cur.bump();
                break;
            }
            _ => {
                text.push(c);
                cur.bump();
            }
        }
    }
    text
}

/// `'x'` char literal vs `'a` lifetime; cursor sits on the quote.
fn scan_quote(cur: &mut Cursor, tokens: &mut Vec<Tok>, line: u32, col: u32) {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal. The char right after a backslash is
            // payload even when it is a quote (`'\''`, `'\\'`), so track
            // escape state instead of breaking on the first `'`.
            let mut text = String::new();
            let mut esc = false;
            while let Some(c) = cur.bump() {
                if esc {
                    esc = false;
                    text.push(c);
                    continue;
                }
                match c {
                    '\\' => {
                        esc = true;
                        text.push(c);
                    }
                    '\'' => break,
                    _ => text.push(c),
                }
            }
            push(tokens, TokKind::Char, text, line, col);
        }
        Some(c) if c.is_alphanumeric() || c == '_' => {
            if cur.peek(1) == Some('\'') {
                // 'x' — single-char literal.
                cur.bump();
                cur.bump();
                push(tokens, TokKind::Char, c.to_string(), line, col);
            } else {
                // 'ident — lifetime, no closing quote.
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push(tokens, TokKind::Lifetime, text, line, col);
            }
        }
        Some(c) => {
            // Punctuation char literal like '(' .
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            push(tokens, TokKind::Char, c.to_string(), line, col);
        }
        None => {}
    }
}

/// Numeric literal, suffix included; cursor sits on the first digit.
fn scan_number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    // Integer / radix part (hex digits fall out of alphanumeric).
    while let Some(c) = cur.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: a '.' NOT followed by another '.' (range) or an
    // identifier start (method call on an integer).
    if cur.peek(0) == Some('.') {
        let after = cur.peek(1);
        let is_frac = match after {
            Some(c) => c.is_ascii_digit(),
            None => true,
        };
        let is_trailing_dot = matches!(after, Some(c) if !c.is_ascii_digit() && c != '.' && !c.is_alphabetic() && c != '_')
            || after.is_none();
        if is_frac || is_trailing_dot {
            text.push('.');
            cur.bump();
            while let Some(c) = cur.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Exponent sign (the digits after it were consumed above unless a
    // sign intervenes: `1e-9`).
    if (text.ends_with('e') || text.ends_with('E'))
        && matches!(cur.peek(0), Some('+') | Some('-'))
        && matches!(cur.peek(1), Some(c) if c.is_ascii_digit())
    {
        text.push(cur.bump().expect("peeked"));
        while let Some(c) = cur.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    text
}

/// Raw/byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
/// Returns `None` (cursor untouched) when the identifier at the cursor
/// is not a string prefix.
fn try_scan_raw_or_byte_string(cur: &mut Cursor) -> Option<String> {
    let c0 = cur.peek(0)?;
    let (mut k, raw) = match (c0, cur.peek(1)) {
        ('r', Some('"')) | ('r', Some('#')) => (1, true),
        ('b', Some('"')) => (1, false),
        ('b', Some('r')) if matches!(cur.peek(2), Some('"') | Some('#')) => (2, true),
        _ => return None,
    };
    let mut hashes = 0usize;
    if raw {
        while cur.peek(k) == Some('#') {
            hashes += 1;
            k += 1;
        }
    }
    if cur.peek(k) != Some('"') {
        return None; // r#ident (raw identifier) or plain ident
    }
    for _ in 0..=k {
        cur.bump(); // prefix chars + opening quote
    }
    let mut text = String::new();
    loop {
        match cur.peek(0) {
            None => break,
            Some('\\') if !raw => {
                cur.bump();
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            Some('"') => {
                // Closing only if followed by the right number of #s.
                let mut ok = true;
                for h in 0..hashes {
                    if cur.peek(1 + h) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        cur.bump();
                    }
                    break;
                }
                text.push('"');
                cur.bump();
            }
            Some(c) => {
                text.push(c);
                cur.bump();
            }
        }
    }
    Some(text)
}

const MULTI_PUNCT: &[&str] = &[
    "..=", "::", "==", "!=", "<=", ">=", "->", "=>", "..", "&&", "||",
];

fn scan_punct(cur: &mut Cursor) -> String {
    for op in MULTI_PUNCT {
        let mut all = true;
        for (k, oc) in op.chars().enumerate() {
            if cur.peek(k) != Some(oc) {
                all = false;
                break;
            }
        }
        if all {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            return (*op).to_string();
        }
    }
    cur.bump().map(String::from).unwrap_or_default()
}

/// Flag every token belonging to a `#[cfg(test)]` / `#[test]` item
/// (attribute included) as test code.
fn mark_test_regions(tokens: &mut [Tok]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            if let Some(attr_end) = matching_close(tokens, i + 1, "[", "]") {
                let words: Vec<&str> = tokens[i + 2..attr_end]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                let is_test = words.contains(&"test") && !words.contains(&"not");
                if is_test {
                    let end = item_end(tokens, attr_end + 1).unwrap_or(tokens.len() - 1);
                    for t in &mut tokens[i..=end] {
                        t.in_test = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Index of the matching closer for the opener at `open_idx`.
fn matching_close(tokens: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// End index of the item starting at `start`: the matching `}` of its
/// first brace block, or the first top-level `;` (e.g. `mod tests;`).
fn item_end(tokens: &[Tok], start: usize) -> Option<usize> {
    let mut k = start;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "{" => return matching_close(tokens, k, "{", "}"),
            ";" => return Some(k),
            // Skip over nested attributes on the same item.
            _ => k += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(f: &SourceFile) -> Vec<String> {
        f.tokens.iter().map(|t| t.text.clone()).collect()
    }

    #[test]
    fn comments_and_strings_are_separated() {
        let f = scan(
            "x.rs",
            "// a comment with unwrap()\nlet s = \"panic! inside\"; s.len();",
        );
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(!idents.contains(&"unwrap"), "comment text must be stripped");
        assert!(!idents.contains(&"panic"), "string text is not an ident");
        let strs: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["panic! inside"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let f = scan("x.rs", "let a = 1;\n  let bb = 2.5;");
        let bb = f.tokens.iter().find(|t| t.text == "bb").unwrap();
        assert_eq!((bb.line, bb.col), (2, 7));
        let num = f.tokens.iter().find(|t| t.text == "2.5").unwrap();
        assert_eq!(num.kind, TokKind::Num);
        assert!(is_float_literal(&num.text));
    }

    #[test]
    fn floats_ranges_and_methods_disambiguate() {
        let f = scan("x.rs", "a[0..n]; 1.0e-3; 7.max(2); 3.; x != 0.5f64;");
        let nums: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "1.0e-3", "7", "2", "3.", "0.5f64"]);
        assert!(is_float_literal("1.0e-3"));
        assert!(is_float_literal("3."));
        assert!(is_float_literal("0.5f64"));
        assert!(!is_float_literal("7"));
        assert_eq!(float_value("0.5f64"), Some(0.5));
        assert_eq!(float_value("0.0"), Some(0.0));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let f = scan("x.rs", "fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn raw_strings_scan_whole() {
        let f = scan("x.rs", r####"let s = r#"quoted "inner" text"#;"####);
        let s = f.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, r#"quoted "inner" text"#);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let f = scan("x.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let f = scan("x.rs", "#[cfg(not(test))]\nfn live() { x.unwrap(); }");
        let u = f.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert!(!u.in_test);
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let f = scan("x.rs", "#[test]\nfn t() { v[0]; }\nfn live() { w[1]; }");
        let v = f.tokens.iter().find(|t| t.text == "v").unwrap();
        let w = f.tokens.iter().find(|t| t.text == "w").unwrap();
        assert!(v.in_test);
        assert!(!w.in_test);
    }

    #[test]
    fn allow_directives_parse_rule_and_reason() {
        let src = "// lint:allow(no-panic-serving, documented ablation hook)\nx.unwrap();\ny(); // lint:allow(float-total-order)\n";
        let f = scan("x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "no-panic-serving");
        assert_eq!(f.allows[0].reason, "documented ablation hook");
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[1].rule, "float-total-order");
        assert_eq!(f.allows[1].reason, "");
        assert_eq!(f.allows[1].line, 3);
    }

    #[test]
    fn multi_char_punct_combines() {
        let f = scan("x.rs", "a == b; c != d; e::f; g -> h;");
        let puncts: Vec<String> = texts(&f)
            .into_iter()
            .filter(|t| ["==", "!=", "::", "->"].contains(&t.as_str()))
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->"]);
    }

    #[test]
    fn raw_identifiers_stay_single_tokens() {
        // `r#fn` / `r#mod` must not split into `r`, `#`, and a keyword —
        // that would desync item extraction into phantom declarations.
        let f = scan("x.rs", "fn r#fn() { r#mod(); let r#impl = 1; }");
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"r#fn"));
        assert!(idents.contains(&"r#mod"));
        assert!(idents.contains(&"r#impl"));
        assert_eq!(
            idents.iter().filter(|t| **t == "fn").count(),
            1,
            "only the real `fn` keyword may appear: {idents:?}"
        );
        assert!(!idents.contains(&"mod"), "r#mod must not leak a keyword");
    }

    #[test]
    fn byte_and_raw_byte_strings_scan_as_whole_literals() {
        let src = "let a = b\"fn {\"; let b = br#\"mod \" {\"#; let c = b\"\\\"esc\";";
        let f = scan("x.rs", src);
        let strs: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["fn {", "mod \" {", "\"esc"]);
        // Braces inside the literals must not surface as punctuation.
        let braces = f.tokens.iter().filter(|t| t.text == "{").count();
        assert_eq!(braces, 0, "string braces leaked into token stream");
    }

    #[test]
    fn escaped_quote_char_literal_does_not_desync() {
        let src = "let q = '\\''; let n = '\\n'; let bs = '\\\\'; x.flag();";
        let f = scan("x.rs", src);
        let chars: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["\\'", "\\n", "\\\\"]);
        // The trailing call must still tokenize — a desync would swallow it.
        assert!(f.tokens.iter().any(|t| t.text == "flag"));
        assert!(!f.tokens.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn test_path_detection() {
        for (p, expect) in [
            ("crates/core/tests/plan_stress.rs", true),
            ("tests/snapshot_serving.rs", true),
            ("examples/persist_pipeline.rs", true),
            ("crates/core/src/plan.rs", false),
            ("crates/obs/benches/overhead.rs", true),
        ] {
            let f = scan(p, "");
            assert_eq!(f.is_test_path(), expect, "{p}");
        }
    }
}
