//! `span-name-drift`: the checked-in metrics baselines stay healthy.
//!
//! The perf gate (`metrics-diff --gate`) compares per-span p50s
//! against the checked-in baselines in `results/`. Deleting or
//! corrupting a baseline must not silently disable that gate, so an
//! unreadable baseline, invalid JSON, or an unrecognized shape is a
//! deny finding here. The other half of the original rule — "every
//! gated name still exists in source" — is owned by `span-coverage`,
//! which checks names against the extracted workspace span registry
//! instead of a raw literal grep; this module exports
//! [`baseline_names`] so both rules parse the baseline shapes the same
//! way.

use super::{RawFinding, Rule};
use crate::engine::{Baseline, Workspace};
use crate::report::Severity;

/// The baseline files whose span sets are enforced, workspace-relative.
/// Metrics baselines carry a `spans` array of `{name, ...}` objects;
/// the quality baseline carries a `series` array of plain name strings
/// (the rolling series the drift gate reads) — both spellings are
/// names that must survive in source.
pub const BASELINE_FILES: &[&str] = &[
    "results/metrics_baseline.json",
    "results/metrics_prepare_baseline.json",
    "results/metrics_warm_baseline.json",
    "results/quality_baseline.json",
];

/// Gated span/series names in one baseline; empty when the file is
/// unreadable or malformed (those are this rule's own findings).
pub fn baseline_names(b: &Baseline) -> Vec<String> {
    let Ok(content) = &b.content else {
        return Vec::new();
    };
    let Ok(value) = serde_json::from_str::<serde_json::Value>(content) else {
        return Vec::new();
    };
    if let Some(spans) = value.get("spans").and_then(|s| s.as_array()) {
        spans
            .iter()
            .filter_map(|span| span.get("name").and_then(|n| n.as_str()))
            .map(str::to_string)
            .collect()
    } else if let Some(series) = value.get("series").and_then(|s| s.as_array()) {
        series
            .iter()
            .filter_map(|s| s.as_str())
            .map(str::to_string)
            .collect()
    } else {
        Vec::new()
    }
}

/// See module docs.
pub struct SpanNameDrift;

impl Rule for SpanNameDrift {
    fn id(&self) -> &'static str {
        "span-name-drift"
    }

    fn summary(&self) -> &'static str {
        "the checked-in metrics baselines must stay readable, valid JSON, and a recognized shape"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn workspace_scoped(&self) -> bool {
        true
    }

    fn check_workspace(&self, ws: &Workspace) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for b in &ws.baselines {
            let whole_file = |message: String| RawFinding::at_pos(&b.path, 0, 0, message);
            let content = match &b.content {
                Ok(c) => c,
                Err(e) => {
                    out.push(whole_file(format!(
                        "baseline unreadable ({e}); the perf gate depends on this file"
                    )));
                    continue;
                }
            };
            let value: serde_json::Value = match serde_json::from_str(content) {
                Ok(v) => v,
                Err(e) => {
                    out.push(whole_file(format!("baseline is not valid JSON: {e}")));
                    continue;
                }
            };
            let has_spans = value.get("spans").and_then(|s| s.as_array()).is_some();
            let has_series = value.get("series").and_then(|s| s.as_array()).is_some();
            if !has_spans && !has_series {
                out.push(whole_file(
                    "baseline has neither a `spans` nor a `series` array; \
                     regenerate it with `--metrics` / `--write-quality-baseline`"
                        .to_string(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Workspace;

    fn ws(src: &str, baseline: &str) -> Workspace {
        Workspace::from_memory(
            &[("crates/core/src/lib.rs", src)],
            &[("results/metrics_baseline.json", baseline)],
        )
    }

    #[test]
    fn healthy_baselines_pass() {
        let w = ws(
            r#"fn f() { let _s = obs::span("engine.search"); }"#,
            r#"{"spans": [{"name": "engine.search", "p50_ns": 1}]}"#,
        );
        assert!(SpanNameDrift.check_workspace(&w).is_empty());
    }

    #[test]
    fn malformed_or_missing_baseline_is_flagged() {
        let w = ws("fn f() {}", "{not json");
        assert_eq!(SpanNameDrift.check_workspace(&w).len(), 1);
        let mut w2 = ws("fn f() {}", "{}");
        assert_eq!(SpanNameDrift.check_workspace(&w2).len(), 1);
        w2.baselines[0].content = Err("No such file".to_string());
        let found = SpanNameDrift.check_workspace(&w2);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("unreadable"));
    }

    #[test]
    fn baseline_names_parse_both_shapes() {
        let w = ws(
            "fn f() {}",
            r#"{"spans": [{"name": "a.b"}, {"name": "c.d"}]}"#,
        );
        assert_eq!(baseline_names(&w.baselines[0]), ["a.b", "c.d"]);
        let w = ws("fn f() {}", r#"{"series": ["q.x"]}"#);
        assert_eq!(baseline_names(&w.baselines[0]), ["q.x"]);
        let w = ws("fn f() {}", "{broken");
        assert!(baseline_names(&w.baselines[0]).is_empty());
    }

    #[test]
    fn missing_names_are_not_this_rules_problem() {
        // A healthy baseline whose names vanished from source is
        // span-coverage territory; this rule stays silent.
        let w = ws("fn f() {}", r#"{"spans": [{"name": "engine.gone"}]}"#);
        assert!(SpanNameDrift.check_workspace(&w).is_empty());
    }
}
