//! `span-name-drift`: CI-gated span names must exist in source.
//!
//! The perf gate (`metrics-diff --gate`) compares per-span p50s against
//! the checked-in baselines in `results/`. Its contract: a gated span
//! missing from a current run fails the gate, because losing
//! instrumentation silently would un-gate a hot path. But that check
//! runs *at CI time on a produced metrics file* — if a span is renamed
//! in source, the failure shows up as a confusing perf-gate error long
//! after the rename. This rule moves the check to lint time: every
//! span name recorded in a baseline must still appear as a string
//! literal somewhere in the workspace source. An unreadable or
//! malformed baseline is itself a finding (deleting the baseline must
//! not silently disable the gate).

use super::{RawFinding, Rule};
use crate::engine::Workspace;
use crate::report::Severity;
use crate::scanner::TokKind;
use std::collections::HashSet;

/// The baseline files whose span sets are enforced, workspace-relative.
/// Metrics baselines carry a `spans` array of `{name, ...}` objects;
/// the quality baseline carries a `series` array of plain name strings
/// (the rolling series the drift gate reads) — both spellings are
/// names that must survive in source.
pub const BASELINE_FILES: &[&str] = &[
    "results/metrics_baseline.json",
    "results/metrics_prepare_baseline.json",
    "results/metrics_warm_baseline.json",
    "results/quality_baseline.json",
];

/// See module docs.
pub struct SpanNameDrift;

impl Rule for SpanNameDrift {
    fn id(&self) -> &'static str {
        "span-name-drift"
    }

    fn summary(&self) -> &'static str {
        "every span name in the checked-in metrics baselines must still exist as a source string literal"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn check_workspace(&self, ws: &Workspace) -> Vec<RawFinding> {
        let mut literals: HashSet<&str> = HashSet::new();
        for f in &ws.files {
            for t in &f.tokens {
                if t.kind == TokKind::Str {
                    literals.insert(t.text.as_str());
                }
            }
        }
        let mut out = Vec::new();
        for b in &ws.baselines {
            let whole_file = |message: String| RawFinding {
                path: b.path.clone(),
                line: 0,
                col: 0,
                message,
            };
            let content = match &b.content {
                Ok(c) => c,
                Err(e) => {
                    out.push(whole_file(format!(
                        "baseline unreadable ({e}); the perf gate depends on this file"
                    )));
                    continue;
                }
            };
            let value: serde_json::Value = match serde_json::from_str(content) {
                Ok(v) => v,
                Err(e) => {
                    out.push(whole_file(format!("baseline is not valid JSON: {e}")));
                    continue;
                }
            };
            // Gated names, from either baseline shape.
            let names: Vec<&str> =
                if let Some(spans) = value.get("spans").and_then(|s| s.as_array()) {
                    spans
                        .iter()
                        .filter_map(|span| span.get("name").and_then(|n| n.as_str()))
                        .collect()
                } else if let Some(series) = value.get("series").and_then(|s| s.as_array()) {
                    series.iter().filter_map(|s| s.as_str()).collect()
                } else {
                    out.push(whole_file(
                        "baseline has neither a `spans` nor a `series` array; \
                     regenerate it with `--metrics` / `--write-quality-baseline`"
                            .to_string(),
                    ));
                    continue;
                };
            for name in names {
                if !literals.contains(name) {
                    out.push(whole_file(format!(
                        "gated span {name:?} no longer appears as a string literal in source; \
                         the rename will fail (or silently skip) the CI perf gate — \
                         update the baseline and CI --gate flags together"
                    )));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Workspace;

    fn ws(src: &str, baseline: &str) -> Workspace {
        Workspace::from_memory(
            &[("crates/core/src/lib.rs", src)],
            &[("results/metrics_baseline.json", baseline)],
        )
    }

    #[test]
    fn matching_spans_pass() {
        let w = ws(
            r#"fn f() { let _s = obs::span("engine.search"); }"#,
            r#"{"spans": [{"name": "engine.search", "p50_ns": 1}]}"#,
        );
        assert!(SpanNameDrift.check_workspace(&w).is_empty());
    }

    #[test]
    fn renamed_span_is_flagged() {
        let w = ws(
            r#"fn f() { let _s = obs::span("engine.search_v2"); }"#,
            r#"{"spans": [{"name": "engine.search", "p50_ns": 1}]}"#,
        );
        let found = SpanNameDrift.check_workspace(&w);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("engine.search"));
        assert_eq!(found[0].path, "results/metrics_baseline.json");
    }

    #[test]
    fn malformed_or_missing_baseline_is_flagged() {
        let w = ws("fn f() {}", "{not json");
        assert_eq!(SpanNameDrift.check_workspace(&w).len(), 1);
        let mut w2 = ws("fn f() {}", "{}");
        assert_eq!(SpanNameDrift.check_workspace(&w2).len(), 1);
        w2.baselines[0].content = Err("No such file".to_string());
        let found = SpanNameDrift.check_workspace(&w2);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("unreadable"));
    }

    #[test]
    fn series_string_arrays_are_gated_too() {
        // The quality baseline lists rolling-series names as plain
        // strings rather than span objects.
        let w = ws(
            r#"pub const OVERLAP: &str = "quality.overlap.citation_text";"#,
            r#"{"series": ["quality.overlap.citation_text"]}"#,
        );
        assert!(SpanNameDrift.check_workspace(&w).is_empty());
        let w = ws(
            r#"pub const OVERLAP: &str = "quality.overlap.citation_text";"#,
            r#"{"series": ["quality.overlap.citation_text_v2"]}"#,
        );
        let found = SpanNameDrift.check_workspace(&w);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("citation_text_v2"));
    }

    #[test]
    fn literal_anywhere_in_source_counts() {
        // The literal need not be at an obs::span call site — stage
        // names travel through Plan::stage, CLI tables, etc.
        let w = ws(
            r#"const STAGES: &[&str] = &["prepare.index"];"#,
            r#"{"spans": [{"name": "prepare.index"}]}"#,
        );
        assert!(SpanNameDrift.check_workspace(&w).is_empty());
    }
}
