//! `no-wallclock-outside-obs`: wall-clock reads belong to telemetry.
//!
//! Determinism and resumability both require that business logic never
//! observe real time: prepared snapshots must be byte-identical across
//! runs, and query results must be pure functions of (snapshot, query).
//! `Instant::now` / `SystemTime::now` are therefore confined to
//! `crates/obs` (span timing is telemetry's whole job) and
//! `crates/bench` (measurement harnesses). Timing demos under
//! `examples/` and code under `tests/`/`benches/` directories are
//! outside the production path and exempt via the engine's test-path
//! filter.

use super::{text_at, RawFinding, Rule};
use crate::report::Severity;
use crate::scanner::{SourceFile, TokKind};

/// Path prefixes where wall-clock reads are legitimate.
pub const ALLOWED_PREFIXES: &[&str] = &["crates/obs/", "crates/bench/"];

/// See module docs.
pub struct NoWallclockOutsideObs;

impl Rule for NoWallclockOutsideObs {
    fn id(&self) -> &'static str {
        "no-wallclock-outside-obs"
    }

    fn summary(&self) -> &'static str {
        "Instant::now / SystemTime::now only in crates/obs and crates/bench; everything else must be time-free"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn applies_to(&self, path: &str) -> bool {
        !ALLOWED_PREFIXES.iter().any(|p| path.starts_with(p))
    }

    fn check_file(&self, file: &SourceFile) -> Vec<RawFinding> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || t.kind != TokKind::Ident {
                continue;
            }
            if (t.text == "Instant" || t.text == "SystemTime")
                && text_at(toks, i + 1) == "::"
                && text_at(toks, i + 2) == "now"
            {
                out.push(RawFinding::at(
                    file,
                    t,
                    format!(
                        "`{}::now()` outside obs/bench makes results time-dependent; thread timing through `obs` spans instead",
                        t.text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::findings_on;
    use super::*;

    #[test]
    fn wallclock_in_core_is_flagged() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let found = findings_on(&NoWallclockOutsideObs, "crates/core/src/plan.rs", src);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn obs_and_bench_are_allowed() {
        assert!(!NoWallclockOutsideObs.applies_to("crates/obs/src/lib.rs"));
        assert!(!NoWallclockOutsideObs.applies_to("crates/bench/src/setup.rs"));
        assert!(NoWallclockOutsideObs.applies_to("crates/core/src/plan.rs"));
    }

    #[test]
    fn instant_type_without_now_is_fine() {
        let src = "fn f(epoch: Instant) -> Duration { other.duration_since(epoch) }";
        assert!(findings_on(&NoWallclockOutsideObs, "crates/core/src/plan.rs", src).is_empty());
    }
}
