//! `no-locks-on-hot-path`: the serving modules take zero locks.
//!
//! PR 3's headline property is that any number of threads serve
//! queries over an immutable `EngineSnapshot` with no synchronization
//! at all — `serve.rs` promises "no `RwLock`, no lazy initialization,
//! no interior mutability of any kind". This rule makes the promise
//! machine-checked: naming a lock or interior-mutability type, or
//! calling a lock-acquiring method, in a serving module is a finding.
//!
//! Atomics are deliberately *not* banned: they are lock-free and the
//! `obs` fast-path flags read them; the invariant is no blocking and
//! no mutation of shared query state.

use super::{text_at, RawFinding, Rule};
use crate::report::Severity;
use crate::scanner::{SourceFile, TokKind};

/// The modules every query executes.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/search/serve.rs",
    "crates/core/src/search/exec.rs",
    "crates/core/src/search/select.rs",
    "crates/core/src/search/relevancy.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/handler.rs",
];

const BANNED_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "lazy_static",
];

const BANNED_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "try_read",
    "write",
    "try_write",
    "wait",
    "get_or_init",
    "get_or_insert_with",
];

/// See module docs.
pub struct NoLocksOnHotPath;

impl Rule for NoLocksOnHotPath {
    fn id(&self) -> &'static str {
        "no-locks-on-hot-path"
    }

    fn summary(&self) -> &'static str {
        "serving modules must stay lock-free: no lock/interior-mutability types or lock-acquiring calls"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn applies_to(&self, path: &str) -> bool {
        HOT_PATH_FILES.contains(&path)
    }

    fn check_file(&self, file: &SourceFile) -> Vec<RawFinding> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || t.kind != TokKind::Ident {
                continue;
            }
            if BANNED_TYPES.contains(&t.text.as_str()) {
                out.push(RawFinding::at(
                    file,
                    t,
                    format!(
                        "`{}` on the serving path breaks the lock-free claim; move shared state into the immutable snapshot",
                        t.text
                    ),
                ));
            } else if BANNED_METHODS.contains(&t.text.as_str())
                && i > 0
                && text_at(toks, i - 1) == "."
                && text_at(toks, i + 1) == "("
            {
                out.push(RawFinding::at(
                    file,
                    t,
                    format!(
                        "`.{}()` acquires a lock (or lazily initializes) on the serving path; precompute in the snapshot instead",
                        t.text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::findings_on;
    use super::*;

    const PATH: &str = "crates/core/src/search/exec.rs";

    #[test]
    fn lock_free_code_passes() {
        let src = r#"
            fn search(&self) -> Vec<u32> {
                let shared = self.snapshot.index();
                write!(f, "display impls are fine").ok();
                shared.scores.iter().copied().collect()
            }
        "#;
        assert!(findings_on(&NoLocksOnHotPath, PATH, src).is_empty());
    }

    #[test]
    fn lock_types_and_calls_are_flagged() {
        let src = r#"
            fn bad(&self) {
                let m: Mutex<u32> = Mutex::new(0);
                let g = m.lock();
                let v = self.cache.get_or_init(|| build());
            }
        "#;
        let found = findings_on(&NoLocksOnHotPath, PATH, src);
        assert_eq!(found.len(), 4, "{found:?}"); // Mutex ×2, .lock(), .get_or_init()
    }

    #[test]
    fn rwlock_read_write_calls_are_flagged() {
        let src = "fn bad(l: &RwLock<u32>) { l.read(); l.write(); }";
        assert_eq!(findings_on(&NoLocksOnHotPath, PATH, src).len(), 3);
    }

    #[test]
    fn tests_are_exempt_and_scope_is_hot_path() {
        let src = "#[cfg(test)]\nmod tests { fn t(m: &Mutex<u8>) { m.lock(); } }";
        assert!(findings_on(&NoLocksOnHotPath, PATH, src).is_empty());
        assert!(!NoLocksOnHotPath.applies_to("crates/core/src/plan.rs"));
        assert!(NoLocksOnHotPath.applies_to("crates/core/src/search/serve.rs"));
    }
}
