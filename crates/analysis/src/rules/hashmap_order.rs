//! `hashmap-order-leak`: hash iteration must not feed ordered output.
//!
//! `HashMap`/`HashSet` iteration order is unspecified and — because
//! `RandomState` seeds per-process — differs run to run. Any place
//! that iterates a hash container and `collect()`s into an ordered
//! container (`Vec`, `String`, ...) without sorting bakes that
//! nondeterminism into results, snapshots, or reports. This is the
//! exact bug class that byte-identical snapshot persistence (PR 3)
//! exists to rule out.
//!
//! Heuristic, two passes per file:
//!  1. find identifiers bound to hash containers (`x: HashMap<...>`,
//!     `let mut x = HashSet::new()`, struct fields);
//!  2. flag `x.iter()/...keys()/...` chains ending in `.collect()`
//!     unless the collect target is itself unordered/sorted
//!     (`HashMap`/`HashSet`/`BTreeMap`/`BTreeSet`) or a `sort*` call
//!     appears within a few lines after the collect (the
//!     collect-then-sort idiom used throughout this workspace).
//!
//! Warn severity: the heuristic is intentionally over-approximate, and
//! a human-confirmed false positive is a one-line `lint:allow`.

use super::{text_at, RawFinding, Rule};
use crate::report::Severity;
use crate::scanner::{is_keyword, SourceFile, TokKind};

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Collect targets that make hash-iteration order irrelevant again.
const ORDER_SAFE_TARGETS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "into_iter",
    "keys",
    "values",
    "into_keys",
    "into_values",
    "drain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

/// How far ahead of `.collect()` (in tokens / lines) we look for the
/// chain tail and the sort-after-collect idiom.
const COLLECT_SCAN_TOKENS: usize = 60;
const SORT_SCAN_LINES: u32 = 8;

/// See module docs.
pub struct HashmapOrderLeak;

impl Rule for HashmapOrderLeak {
    fn id(&self) -> &'static str {
        "hashmap-order-leak"
    }

    fn summary(&self) -> &'static str {
        "hash-container iteration collected into ordered output needs an explicit sort (or a BTree/hash target)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn applies_to(&self, _path: &str) -> bool {
        true
    }

    fn check_file(&self, file: &SourceFile) -> Vec<RawFinding> {
        let toks = &file.tokens;

        // Pass 1: names bound to hash containers.
        let mut hash_names: Vec<&str> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || t.kind != TokKind::Ident || is_keyword(&t.text) {
                continue;
            }
            // `name: HashMap<...>` (let annotations, params, fields) or
            // `name = HashMap::new()`. Skip `&`/`mut` noise after the
            // separator so `x: &HashMap<..>` still registers.
            let sep = text_at(toks, i + 1);
            if sep != ":" && sep != "=" {
                continue;
            }
            let mut k = i + 2;
            while matches!(text_at(toks, k), "&" | "mut" | "'") {
                k += 1;
            }
            if toks
                .get(k)
                .is_some_and(|n| n.kind == TokKind::Ident && HASH_TYPES.contains(&n.text.as_str()))
            {
                hash_names.push(&t.text);
            }
        }

        // Pass 2: iteration chains off those names ending in collect().
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || t.kind != TokKind::Ident {
                continue;
            }
            let starts_iteration = (hash_names.contains(&t.text.as_str())
                && text_at(toks, i + 1) == "."
                && toks
                    .get(i + 2)
                    .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                && text_at(toks, i + 3) == "(")
                // Direct `HashMap::from(...).into_iter()`-style chains.
                || (HASH_TYPES.contains(&t.text.as_str()) && text_at(toks, i + 1) == "::");
            if !starts_iteration {
                continue;
            }
            // Walk the method chain forward looking for a consumer
            // (`.collect`, `.sum`, `.product`), stopping at the end of
            // the statement — `;` or a closing `}` means whatever
            // consumes later is a different expression (a `;` inside a
            // braced closure also stops us: erring toward silence is
            // this rule's design stance).
            let mut consumer = None;
            for k in i..toks.len().min(i + COLLECT_SCAN_TOKENS) {
                let tk = &toks[k];
                if tk.kind == TokKind::Punct && (tk.text == ";" || tk.text == "}") {
                    break;
                }
                if tk.kind == TokKind::Ident
                    && matches!(tk.text.as_str(), "collect" | "sum" | "product")
                    && text_at(toks, k - 1) == "."
                {
                    consumer = Some(k);
                    break;
                }
            }
            let Some(consumer) = consumer else {
                continue;
            };
            if toks[consumer].text == "collect" {
                if collect_target_is_safe(toks, consumer) || sorted_nearby(toks, consumer) {
                    continue;
                }
                out.push(RawFinding::at(
                    file,
                    t,
                    format!(
                        "hash-container iteration starting at `{}` is collected into ordered output without a sort; iteration order is nondeterministic — sort the result or collect into a BTree container",
                        t.text
                    ),
                ));
            } else {
                // `sum::<usize>()` and friends are exact — integer
                // addition commutes. Only un-annotated / float sums
                // carry rounding that depends on iteration order.
                if text_at(toks, consumer + 1) == "::"
                    && text_at(toks, consumer + 2) == "<"
                    && toks.get(consumer + 3).is_some_and(|n| {
                        matches!(
                            n.text.as_str(),
                            "usize"
                                | "u8"
                                | "u16"
                                | "u32"
                                | "u64"
                                | "u128"
                                | "isize"
                                | "i8"
                                | "i16"
                                | "i32"
                                | "i64"
                                | "i128"
                        )
                    })
                {
                    continue;
                }
                // Float += is not associative: a sum/product over hash
                // iteration rounds differently per process *and per
                // thread* (per-thread hash seeds), so even one process
                // serving from multiple threads diverges at ULP level.
                out.push(RawFinding::at(
                    file,
                    t,
                    format!(
                        "`.{}()` over hash-container iteration starting at `{}` accumulates in nondeterministic order; if the elements are floats the result differs per thread — iterate a sorted collection instead",
                        toks[consumer].text, t.text
                    ),
                ));
            }
        }
        out
    }
}

/// `collect::<HashMap<_, _>>()` / `collect::<BTreeMap<..>>()` etc.,
/// or a preceding `let name: HashSet<..> = ` annotation on the same
/// statement (approximated: annotation type within the scan window
/// before the chain is handled by the turbofish check only — the
/// annotation form re-registers in pass 1 and never reaches ordered
/// output, so turbofish is the case that matters in practice).
fn collect_target_is_safe(toks: &[crate::scanner::Tok], collect_idx: usize) -> bool {
    if text_at(toks, collect_idx + 1) == "::" && text_at(toks, collect_idx + 2) == "<" {
        if let Some(target) = toks.get(collect_idx + 3) {
            return ORDER_SAFE_TARGETS.contains(&target.text.as_str());
        }
    }
    // `let x: HashSet<_> = src.iter()...collect();` — look back for a
    // `: SafeTarget` annotation on the statement the chain belongs to.
    let line_start = toks[collect_idx].line;
    let mut k = collect_idx;
    while k > 0 && line_start.saturating_sub(toks[k - 1].line) <= 12 {
        k -= 1;
        // Statement/block boundaries end the current statement — a
        // `: HashMap` beyond one is a different binding (fn params,
        // the previous let), not this collect's annotation.
        if matches!(toks[k].text.as_str(), ";" | "{" | "}") {
            break;
        }
        if toks[k].text == ":"
            && toks
                .get(k + 1)
                .is_some_and(|n| ORDER_SAFE_TARGETS.contains(&n.text.as_str()))
        {
            return true;
        }
    }
    false
}

/// A `sort*` / `reorder`-style call within a few lines after the
/// collect — the dominant idiom in this workspace
/// (`collect(); v.sort_by(...)`).
fn sorted_nearby(toks: &[crate::scanner::Tok], collect_idx: usize) -> bool {
    let line = toks[collect_idx].line;
    toks[collect_idx..]
        .iter()
        .take_while(|t| t.line <= line + SORT_SCAN_LINES)
        .any(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::findings_on;
    use super::*;

    const PATH: &str = "crates/core/src/search/exec.rs";

    #[test]
    fn unsorted_hash_iteration_into_vec_is_flagged() {
        let src = r#"
            fn f(best: HashMap<u32, f64>) -> Vec<u32> {
                best.iter().map(|(k, _)| *k).collect()
            }
        "#;
        let found = findings_on(&HashmapOrderLeak, PATH, src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("nondeterministic"));
    }

    #[test]
    fn collect_then_sort_is_fine() {
        let src = r#"
            fn f(best: HashMap<u32, f64>) -> Vec<(u32, f64)> {
                let mut v: Vec<(u32, f64)> = best.iter().map(|(k, s)| (*k, *s)).collect();
                v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                v
            }
        "#;
        assert!(findings_on(&HashmapOrderLeak, PATH, src).is_empty());
    }

    #[test]
    fn collect_into_unordered_or_btree_is_fine() {
        let src = r#"
            fn f(seen: HashSet<u32>) {
                let copy = seen.iter().copied().collect::<HashSet<u32>>();
                let ordered = seen.iter().copied().collect::<BTreeSet<u32>>();
                let annotated: HashSet<u32> = seen.iter().copied().collect();
            }
        "#;
        assert!(findings_on(&HashmapOrderLeak, PATH, src).is_empty());
    }

    #[test]
    fn float_sum_over_hash_iteration_is_flagged() {
        // The exact shape of a real bug: IDF masses summed over
        // HashSet iteration differ per serving thread at ULP level.
        let src = r#"
            fn mass(query_set: HashSet<TermId>, idf: &[f64]) -> f64 {
                query_set.iter().map(|&t| idf[t.index()]).sum()
            }
        "#;
        let found = findings_on(&HashmapOrderLeak, PATH, src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("per thread"));
    }

    #[test]
    fn integer_sum_over_hash_iteration_is_exact() {
        let src = r#"
            fn total(members: HashMap<u32, Vec<u32>>) -> usize {
                members.values().map(Vec::len).sum::<usize>()
            }
        "#;
        assert!(findings_on(&HashmapOrderLeak, PATH, src).is_empty());
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let src = r#"
            fn f(xs: Vec<u32>) -> Vec<u32> {
                xs.iter().map(|x| x + 1).collect()
            }
        "#;
        assert!(findings_on(&HashmapOrderLeak, PATH, src).is_empty());
    }

    #[test]
    fn keys_chain_and_tests_exemption() {
        let src = r#"
            fn f(m: HashMap<String, u32>) -> Vec<String> {
                m.keys().cloned().collect()
            }
            #[cfg(test)]
            mod tests {
                fn t(m: HashMap<String, u32>) -> Vec<String> { m.keys().cloned().collect() }
            }
        "#;
        assert_eq!(findings_on(&HashmapOrderLeak, PATH, src).len(), 1);
    }
}
