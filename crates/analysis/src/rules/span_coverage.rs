//! `span-coverage`: the workspace span-name registry, and the gate
//! that every baseline-gated name is in it.
//!
//! The registry is the set of dotted lowercase string literals in
//! non-test source (`"serve.query"`, `"prepare.index"`,
//! `"quality.overlap.citation_text"`), each with the sites where it
//! appears and how (an `obs::span`/call argument, a `const`/`static`
//! initializer, or a plain literal). `--emit-registry` writes it to
//! `results/span_registry.json` so CI can archive the full
//! instrumentation surface; this rule cross-checks the four checked-in
//! metrics baselines against it — a span name the perf gate relies on
//! that no longer exists anywhere in source is a deny finding at lint
//! time, not a confusing perf-gate error later.
//!
//! This supersedes the literal-grep half of the original
//! `span-name-drift` rule; `span-name-drift` keeps the baseline
//! health checks (readable, valid JSON, recognized shape).
//!
//! Name grammar (documented approximation): segments of
//! `[a-z0-9_]+` starting with a letter, joined by `.`, at least two
//! segments; names whose final segment is a file extension
//! (`metrics.json`, `serve.rs`) are not spans.

use super::{span_drift, RawFinding, Rule};
use crate::engine::Workspace;
use crate::report::{json_str, Severity};
use crate::scanner::TokKind;
use std::collections::BTreeMap;

/// Final segments that mark a dotted literal as a file name, not a
/// span name.
const FILE_EXTENSIONS: &[&str] = &[
    "json", "jsonl", "md", "rs", "toml", "txt", "csv", "tsv", "log", "dot",
];

/// One appearance of a span name in source.
#[derive(Debug, Clone)]
pub struct SpanSite {
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// `call:<fn>` for a call argument, `const` inside a
    /// const/static initializer, `literal` otherwise.
    pub kind: String,
}

/// True when `s` parses as a span name under the module-doc grammar.
pub fn is_span_name(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    if segs.len() < 2 {
        return false;
    }
    for seg in &segs {
        let mut chars = seg.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {}
            _ => return false,
        }
        if !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
    }
    !FILE_EXTENSIONS.contains(segs.last().unwrap())
}

/// Extract the registry: span name → sorted sites.
pub fn build_registry(ws: &Workspace) -> BTreeMap<String, Vec<SpanSite>> {
    let mut out: BTreeMap<String, Vec<SpanSite>> = BTreeMap::new();
    for file in &ws.files {
        if file.is_test_path() {
            continue;
        }
        // Track whether we're inside a const/static item initializer:
        // set at `const`/`static`, cleared at the closing `;`.
        let mut in_const = false;
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind == TokKind::Ident && (t.text == "const" || t.text == "static") {
                in_const = true;
            } else if t.text == ";" {
                in_const = false;
            }
            if t.kind != TokKind::Str || t.in_test || !is_span_name(&t.text) {
                continue;
            }
            let kind = {
                let prev = |k: usize| file.tokens.get(i.wrapping_sub(k));
                let called = prev(1)
                    .filter(|p| p.text == "(")
                    .and_then(|_| prev(2))
                    .filter(|f| f.kind == TokKind::Ident);
                match called {
                    Some(f) => format!("call:{}", f.text),
                    None if in_const => "const".to_string(),
                    None => "literal".to_string(),
                }
            };
            out.entry(t.text.clone()).or_default().push(SpanSite {
                path: file.path.clone(),
                line: t.line,
                kind,
            });
        }
    }
    for sites in out.values_mut() {
        sites.sort_by(|a, b| (&a.path, a.line, &a.kind).cmp(&(&b.path, b.line, &b.kind)));
    }
    out
}

/// Deterministic JSON for `--emit-registry` /
/// `results/span_registry.json`.
pub fn registry_json(ws: &Workspace) -> String {
    let reg = build_registry(ws);
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"count\": {},\n  \"names\": [\n", reg.len()));
    let total = reg.len();
    for (k, (name, sites)) in reg.iter().enumerate() {
        let rendered: Vec<String> = sites
            .iter()
            .map(|site| {
                format!(
                    "{{\"path\": {}, \"line\": {}, \"kind\": {}}}",
                    json_str(&site.path),
                    site.line,
                    json_str(&site.kind)
                )
            })
            .collect();
        s.push_str(&format!(
            "    {{\"name\": {}, \"sites\": [{}]}}{}\n",
            json_str(name),
            rendered.join(", "),
            if k + 1 < total { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// See module docs.
pub struct SpanCoverage;

impl Rule for SpanCoverage {
    fn id(&self) -> &'static str {
        "span-coverage"
    }

    fn summary(&self) -> &'static str {
        "every span name a checked-in baseline gates must exist in the workspace span registry"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn workspace_scoped(&self) -> bool {
        true
    }

    fn check_workspace(&self, ws: &Workspace) -> Vec<RawFinding> {
        let registry = build_registry(ws);
        let mut out = Vec::new();
        for b in &ws.baselines {
            // Health problems (unreadable, bad JSON, wrong shape) are
            // span-name-drift findings; here we only gate the names.
            for name in span_drift::baseline_names(b) {
                if !registry.contains_key(&name) {
                    out.push(RawFinding::at_pos(
                        &b.path,
                        0,
                        0,
                        format!(
                            "gated span {name:?} is missing from the workspace span registry; \
                             the rename will fail (or silently skip) the CI perf gate — \
                             update the baseline and CI --gate flags together"
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Workspace;

    fn ws(src: &str, baseline: &str) -> Workspace {
        Workspace::from_memory(
            &[("crates/core/src/lib.rs", src)],
            &[("results/metrics_baseline.json", baseline)],
        )
    }

    #[test]
    fn matching_spans_pass() {
        let w = ws(
            r#"fn f() { let _s = obs::span("engine.search"); }"#,
            r#"{"spans": [{"name": "engine.search", "p50_ns": 1}]}"#,
        );
        assert!(SpanCoverage.check_workspace(&w).is_empty());
    }

    #[test]
    fn renamed_span_is_flagged() {
        let w = ws(
            r#"fn f() { let _s = obs::span("engine.search_v2"); }"#,
            r#"{"spans": [{"name": "engine.search", "p50_ns": 1}]}"#,
        );
        let found = SpanCoverage.check_workspace(&w);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("engine.search"));
        assert_eq!(found[0].path, "results/metrics_baseline.json");
    }

    #[test]
    fn series_string_arrays_are_gated_too() {
        let w = ws(
            r#"pub const OVERLAP: &str = "quality.overlap.citation_text";"#,
            r#"{"series": ["quality.overlap.citation_text"]}"#,
        );
        assert!(SpanCoverage.check_workspace(&w).is_empty());
        let w = ws(
            r#"pub const OVERLAP: &str = "quality.overlap.citation_text";"#,
            r#"{"series": ["quality.overlap.citation_text_v2"]}"#,
        );
        let found = SpanCoverage.check_workspace(&w);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("citation_text_v2"));
    }

    #[test]
    fn literal_anywhere_in_source_counts() {
        // The literal need not be at an obs::span call site — stage
        // names travel through Plan::stage, CLI tables, etc.
        let w = ws(
            r#"const STAGES: &[&str] = &["prepare.index"];"#,
            r#"{"spans": [{"name": "prepare.index"}]}"#,
        );
        assert!(SpanCoverage.check_workspace(&w).is_empty());
    }

    #[test]
    fn name_grammar_excludes_files_and_prose() {
        for yes in ["serve.query", "quality.overlap.citation_text", "a.b_c2"] {
            assert!(is_span_name(yes), "{yes}");
        }
        for no in [
            "metrics.json",
            "serve.rs",
            "Serve.Query",
            "oneword",
            "trailing.",
            ".leading",
            "has space.x",
            "9lead.x",
        ] {
            assert!(!is_span_name(no), "{no}");
        }
    }

    #[test]
    fn site_kinds_are_classified() {
        let w = ws(
            "pub const N: &str = \"serve.query\";\nfn f() {\n    let _s = obs::span(\"engine.search\");\n    log(\"free.floating\")\n}\nfn g() -> &'static str { \"plain.literal\" }\n",
            r#"{"spans": []}"#,
        );
        let reg = build_registry(&w);
        assert_eq!(reg["serve.query"][0].kind, "const");
        assert_eq!(reg["engine.search"][0].kind, "call:span");
        assert_eq!(reg["free.floating"][0].kind, "call:log");
        assert_eq!(reg["plain.literal"][0].kind, "literal");
    }

    #[test]
    fn test_code_is_not_coverage() {
        let w = Workspace::from_memory(
            &[
                (
                    "crates/core/tests/t.rs",
                    r#"fn t() { obs::span("only.in_tests"); }"#,
                ),
                (
                    "crates/core/src/lib.rs",
                    "#[cfg(test)]\nmod tests {\n    fn t() { obs::span(\"cfg.test_only\"); }\n}\n",
                ),
            ],
            &[(
                "results/metrics_baseline.json",
                r#"{"spans": [{"name": "only.in_tests"}]}"#,
            )],
        );
        assert!(build_registry(&w).is_empty());
        assert_eq!(SpanCoverage.check_workspace(&w).len(), 1);
    }

    #[test]
    fn registry_json_is_deterministic_and_parseable() {
        let w = ws(
            "fn f() { obs::span(\"b.two\"); obs::span(\"a.one\"); }\n",
            r#"{"spans": []}"#,
        );
        let j1 = registry_json(&w);
        let j2 = registry_json(&w);
        assert_eq!(j1, j2);
        let v: serde_json::Value = serde_json::from_str(&j1).unwrap();
        assert_eq!(v["count"].as_f64(), Some(2.0));
        assert_eq!(v["names"][0]["name"], "a.one", "sorted by name");
    }
}
