//! `float-total-order`: ranking comparisons must be total.
//!
//! Every ranked list in the system — search results, context
//! selection, prestige tables, evaluation curves — is ordered by `f64`
//! scores. `partial_cmp` is a trap here twice over: `.unwrap()` on it
//! panics the moment a NaN sneaks into a score, and
//! `.unwrap_or(Ordering::Equal)` silently turns NaN into "equal to
//! everything", which makes the sort order depend on the input
//! permutation — exactly the nondeterminism the paper's evaluation
//! (and PR 3's byte-identical snapshots) cannot tolerate.
//! `f64::total_cmp` gives the IEEE 754 totalOrder for free.
//!
//! Also flagged: `==` / `!=` against non-zero float literals (brittle
//! representation-dependent equality). Comparisons against `0.0` are
//! exempt — exact-zero sentinel checks are deterministic and idiomatic
//! for "no mass / empty input" guards.
//!
//! Applies workspace-wide (non-test code): determinism is a global
//! property, not a per-module one.

use super::{RawFinding, Rule};
use crate::report::Severity;
use crate::scanner::{float_value, is_float_literal, SourceFile, TokKind};

/// See module docs.
pub struct FloatTotalOrder;

impl Rule for FloatTotalOrder {
    fn id(&self) -> &'static str {
        "float-total-order"
    }

    fn summary(&self) -> &'static str {
        "float ordering must use total_cmp, and float equality must not compare against non-zero literals"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn applies_to(&self, _path: &str) -> bool {
        true
    }

    fn check_file(&self, file: &SourceFile) -> Vec<RawFinding> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            if t.kind == TokKind::Ident && t.text == "partial_cmp" {
                out.push(RawFinding::at(
                    file,
                    t,
                    "`partial_cmp` is not a total order over f64 (NaN breaks it); use `f64::total_cmp` with the deterministic id tie-break".to_string(),
                ));
                continue;
            }
            if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
                let neighbor_float = [i.wrapping_sub(1), i + 1].into_iter().find_map(|k| {
                    let n = toks.get(k)?;
                    if n.kind == TokKind::Num && is_float_literal(&n.text) {
                        Some(n.text.clone())
                    } else {
                        None
                    }
                });
                if let Some(lit) = neighbor_float {
                    // Exact-zero sentinel comparisons are deterministic.
                    if float_value(&lit) != Some(0.0) {
                        out.push(RawFinding::at(
                            file,
                            t,
                            format!(
                                "`{} {lit}` compares floats for exact equality against a non-zero literal; use an epsilon or restructure",
                                t.text
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::findings_on;
    use super::*;

    const PATH: &str = "crates/eval/src/overlap.rs";

    #[test]
    fn total_cmp_sorts_pass() {
        let src = r#"
            fn order(xs: &mut Vec<(u32, f64)>) {
                xs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                if mass == 0.0 { return; }
                let keep = w != 0.0;
            }
        "#;
        assert!(findings_on(&FloatTotalOrder, PATH, src).is_empty());
    }

    #[test]
    fn partial_cmp_is_flagged_anywhere() {
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let found = findings_on(&FloatTotalOrder, PATH, src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("total_cmp"));
    }

    #[test]
    fn nonzero_float_equality_is_flagged_zero_is_exempt() {
        let src = "fn f(x: f64) -> bool { x == 0.5 || x != 1.0 || x == 0.0 }";
        let found = findings_on(&FloatTotalOrder, PATH, src);
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn integer_equality_is_ignored() {
        let src = "fn f(n: usize) -> bool { n == 0 || n != 10 }";
        assert!(findings_on(&FloatTotalOrder, PATH, src).is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.partial_cmp(&b); } }";
        assert!(findings_on(&FloatTotalOrder, PATH, src).is_empty());
    }
}
