//! `no-panic-serving`: the serving path and snapshot persistence must
//! not contain panic points.
//!
//! The paper's latency and determinism claims assume a query either
//! completes or returns a typed error — a panic mid-query tears down a
//! serving thread and, under `std::thread::scope`-style pools, the
//! whole process. Scope: the three serving modules plus `persist.rs`
//! (whose module doc promises "never panics" on the load path).
//!
//! Flags, outside test code: `.unwrap()` / `.expect(...)`, panicking
//! macros (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, and
//! non-debug asserts), and `expr[...]` indexing (which can panic on
//! out-of-bounds; `get()` is the checked spelling).

use super::{text_at, RawFinding, Rule};
use crate::report::Severity;
use crate::scanner::{is_keyword, SourceFile, TokKind};

/// Files under the panic-free contract.
pub const SERVING_FILES: &[&str] = &[
    "crates/core/src/search/serve.rs",
    "crates/core/src/search/exec.rs",
    "crates/core/src/search/select.rs",
    "crates/core/src/persist.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/handler.rs",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// See module docs.
pub struct NoPanicServing;

impl Rule for NoPanicServing {
    fn id(&self) -> &'static str {
        "no-panic-serving"
    }

    fn summary(&self) -> &'static str {
        "serving modules and snapshot persistence must be panic-free: no unwrap/expect, panicking macros, or unchecked indexing"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn applies_to(&self, path: &str) -> bool {
        SERVING_FILES.contains(&path)
    }

    fn check_file(&self, file: &SourceFile) -> Vec<RawFinding> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            match t.kind {
                // Method-call position only: `.unwrap(`.
                TokKind::Ident
                    if (t.text == "unwrap" || t.text == "expect")
                        && i > 0
                        && text_at(toks, i - 1) == "."
                        && text_at(toks, i + 1) == "(" =>
                {
                    out.push(RawFinding::at(
                        file,
                        t,
                        format!(
                            "`.{}()` can panic on the serving path; return a typed error (e.g. `PersistError`/`ServeError`) instead",
                            t.text
                        ),
                    ));
                }
                TokKind::Ident
                    if PANIC_MACROS.contains(&t.text.as_str()) && text_at(toks, i + 1) == "!" =>
                {
                    out.push(RawFinding::at(
                        file,
                        t,
                        format!(
                            "`{}!` panics; serving code must fail with a typed error",
                            t.text
                        ),
                    ));
                }
                TokKind::Punct if t.text == "[" && i > 0 => {
                    let prev = &toks[i - 1];
                    let indexes_expr = match prev.kind {
                        TokKind::Ident => !is_keyword(&prev.text),
                        TokKind::Punct => prev.text == ")" || prev.text == "]",
                        _ => false,
                    };
                    if indexes_expr {
                        out.push(RawFinding::at(
                            file,
                            t,
                            "`expr[...]` indexing panics when out of bounds; use `.get(...)` and handle the miss".to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::findings_on;
    use super::*;

    const PATH: &str = "crates/core/src/search/serve.rs";

    #[test]
    fn clean_serving_code_passes() {
        let src = r#"
            fn q(&self) -> Result<Vec<u8>, ServeError> {
                let v = self.table.get(&k).ok_or(ServeError::Missing)?;
                let first = v.first().copied().unwrap_or_default();
                Ok(vec![first])
            }
        "#;
        assert!(findings_on(&NoPanicServing, PATH, src).is_empty());
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let src = "fn f() { a.unwrap(); b.expect(\"msg\"); }";
        let found = findings_on(&NoPanicServing, PATH, src);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("unwrap"));
        assert!(found[1].message.contains("expect"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }";
        assert!(findings_on(&NoPanicServing, PATH, src).is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let src = "fn f() { if bad { panic!(\"boom\") } else { unreachable!() } }";
        assert_eq!(findings_on(&NoPanicServing, PATH, src).len(), 2);
    }

    #[test]
    fn indexing_is_flagged_but_not_macros_attrs_or_types() {
        let src = r#"
            #[derive(Debug)]
            struct S { xs: Vec<u32> }
            fn f(s: &S, i: usize, m: &[u32]) -> u32 {
                let v = vec![1, 2];
                for k in [1, 2] { let _ = k; }
                s.xs[i] + v[0] + m[1]
            }
        "#;
        let found = findings_on(&NoPanicServing, PATH, src);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("indexing")));
    }

    #[test]
    fn test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); v[0]; panic!(); } }";
        assert!(findings_on(&NoPanicServing, PATH, src).is_empty());
    }

    #[test]
    fn scope_is_the_serving_files() {
        assert!(NoPanicServing.applies_to("crates/core/src/persist.rs"));
        assert!(!NoPanicServing.applies_to("crates/core/src/plan.rs"));
        assert!(!NoPanicServing.applies_to("crates/eval/src/stats.rs"));
    }
}
