//! The rule set: each rule guards one architectural invariant.
//!
//! | rule id | invariant |
//! |---|---|
//! | `no-panic-serving` | the query/serve path and snapshot persistence never panic |
//! | `no-locks-on-hot-path` | PR 3's lock-free serving claim stays true |
//! | `float-total-order` | ranking comparisons are total (NaN-safe, deterministic) |
//! | `no-wallclock-outside-obs` | wall-clock reads stay inside telemetry/bench code |
//! | `span-name-drift` | CI-gated span names still exist as source literals |
//! | `hashmap-order-leak` | hash iteration order never leaks into ranked output |
//!
//! Rules are token-pattern matchers over [`SourceFile`] streams — no
//! type information. Where that forces a heuristic (float expressions,
//! hash-iteration flow), the rule errs toward silence on patterns it
//! cannot classify and the dynamic tests cover the remainder.

use crate::engine::Workspace;
use crate::report::Severity;
use crate::scanner::{SourceFile, Tok};

pub mod float_order;
pub mod hashmap_order;
pub mod no_locks;
pub mod no_panic;
pub mod span_drift;
pub mod wallclock;

/// A finding before severity assignment.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 = whole file).
    pub line: u32,
    /// 1-based column (0 = whole file).
    pub col: u32,
    /// Explanation.
    pub message: String,
}

impl RawFinding {
    /// Finding anchored at a token.
    pub fn at(file: &SourceFile, tok: &Tok, message: String) -> Self {
        Self {
            path: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        }
    }
}

/// One lint rule.
pub trait Rule {
    /// Stable id used in reports and `lint:allow(...)`.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Severity before config overrides.
    fn default_severity(&self) -> Severity;
    /// Whether this per-file rule wants `path` (test paths are already
    /// filtered by the engine). Workspace rules return `false`.
    fn applies_to(&self, _path: &str) -> bool {
        false
    }
    /// Per-file check.
    fn check_file(&self, _file: &SourceFile) -> Vec<RawFinding> {
        Vec::new()
    }
    /// Whole-workspace check (cross-file state).
    fn check_workspace(&self, _ws: &Workspace) -> Vec<RawFinding> {
        Vec::new()
    }
}

/// Every rule, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanicServing),
        Box::new(no_locks::NoLocksOnHotPath),
        Box::new(float_order::FloatTotalOrder),
        Box::new(wallclock::NoWallclockOutsideObs),
        Box::new(span_drift::SpanNameDrift),
        Box::new(hashmap_order::HashmapOrderLeak),
    ]
}

/// Text of the token at `i`, or "".
pub(crate) fn text_at(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::scanner::scan;

    /// Run one rule over a synthetic file.
    pub fn findings_on(rule: &dyn Rule, path: &str, src: &str) -> Vec<RawFinding> {
        let f = scan(path, src);
        rule.check_file(&f)
    }
}
