//! The rule set: each rule guards one architectural invariant.
//!
//! | rule id | invariant |
//! |---|---|
//! | `no-panic-serving` | the query/serve path and snapshot persistence never panic |
//! | `no-locks-on-hot-path` | PR 3's lock-free serving claim stays true |
//! | `float-total-order` | ranking comparisons are total (NaN-safe, deterministic) |
//! | `no-wallclock-outside-obs` | wall-clock reads stay inside telemetry/bench code |
//! | `span-name-drift` | the checked-in metrics baselines stay readable and well-formed |
//! | `span-coverage` | every baseline-gated span name exists in the workspace span registry |
//! | `hashmap-order-leak` | hash iteration order never leaks into ranked output |
//! | `panic-reachable-serving` | no panic site is call-reachable from a serve entrypoint |
//! | `lock-reachable-hot-path` | no lock is call-reachable from a serve entrypoint |
//! | `alloc-on-hot-path` | the per-candidate kernel never allocates outside the scratch pool |
//!
//! The per-file rules are token-pattern matchers over [`SourceFile`]
//! streams — no type information. Where that forces a heuristic
//! (float expressions, hash-iteration flow), the rule errs toward
//! silence on patterns it cannot classify and the dynamic tests cover
//! the remainder. The `*-reachable-*` rules run over the approximate
//! call graph ([`crate::callgraph`]) instead and err the other way:
//! name-based resolution over-approximates, and the boundary stop-list
//! plus narrowed leaf-fact sets (see [`crate::reach`]) keep the
//! false-positive rate at zero on this workspace.

use crate::callgraph::CallGraph;
use crate::engine::Workspace;
use crate::report::{ChainStep, Severity};
use crate::scanner::{SourceFile, Tok};

pub mod float_order;
pub mod hashmap_order;
pub mod interproc;
pub mod no_locks;
pub mod no_panic;
pub mod span_coverage;
pub mod span_drift;
pub mod wallclock;

/// A finding before severity assignment.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 = whole file).
    pub line: u32,
    /// 1-based column (0 = whole file).
    pub col: u32,
    /// Explanation.
    pub message: String,
    /// Witness call chain for interprocedural findings (root first).
    pub chain: Vec<ChainStep>,
}

impl RawFinding {
    /// Finding anchored at a token.
    pub fn at(file: &SourceFile, tok: &Tok, message: String) -> Self {
        Self {
            path: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message,
            chain: Vec::new(),
        }
    }

    /// Finding anchored at an explicit position, no chain.
    pub fn at_pos(path: &str, line: u32, col: u32, message: String) -> Self {
        Self {
            path: path.to_string(),
            line,
            col,
            message,
            chain: Vec::new(),
        }
    }
}

/// One lint rule.
pub trait Rule {
    /// Stable id used in reports and `lint:allow(...)`.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Severity before config overrides.
    fn default_severity(&self) -> Severity;
    /// Whether this per-file rule wants `path` (test paths are already
    /// filtered by the engine). Workspace rules return `false`.
    fn applies_to(&self, _path: &str) -> bool {
        false
    }
    /// Per-file check.
    fn check_file(&self, _file: &SourceFile) -> Vec<RawFinding> {
        Vec::new()
    }
    /// Whole-workspace check (cross-file state).
    fn check_workspace(&self, _ws: &Workspace) -> Vec<RawFinding> {
        Vec::new()
    }
    /// Interprocedural check over the workspace call graph. Only runs
    /// when the engine built a graph (full-workspace scans).
    fn check_graph(&self, _ws: &Workspace, _graph: &CallGraph) -> Vec<RawFinding> {
        Vec::new()
    }
    /// True for rules whose verdict needs the whole workspace (the
    /// call graph or cross-file state). `--paths` fast mode skips
    /// them, and their `lint:allow` directives are exempt from the
    /// stale check there.
    fn workspace_scoped(&self) -> bool {
        false
    }
}

/// Every rule, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanicServing),
        Box::new(no_locks::NoLocksOnHotPath),
        Box::new(float_order::FloatTotalOrder),
        Box::new(wallclock::NoWallclockOutsideObs),
        Box::new(span_drift::SpanNameDrift),
        Box::new(span_coverage::SpanCoverage),
        Box::new(hashmap_order::HashmapOrderLeak),
        Box::new(interproc::PanicReachableServing),
        Box::new(interproc::LockReachableHotPath),
        Box::new(interproc::AllocOnHotPath),
    ]
}

/// Text of the token at `i`, or "".
pub(crate) fn text_at(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::scanner::scan;

    /// Run one rule over a synthetic file.
    pub fn findings_on(rule: &dyn Rule, path: &str, src: &str) -> Vec<RawFinding> {
        let f = scan(path, src);
        rule.check_file(&f)
    }
}
