//! The interprocedural rules: capability reachability from the serve
//! entrypoints, with witness call chains.
//!
//! | rule id | roots | capability |
//! |---|---|---|
//! | `panic-reachable-serving` | [`SERVE_ROOTS`] | may-panic |
//! | `lock-reachable-hot-path` | [`SERVE_ROOTS`] | takes-lock |
//! | `alloc-on-hot-path` | [`ALLOC_ROOTS`] | allocates |
//!
//! Each finding is anchored at the *leaf fact* (the `.unwrap()`, the
//! `OnceLock`, the `.collect()`) and carries the full witness chain
//! from the entrypoint, so the fix site and the reason it matters are
//! both in the report.
//!
//! Double-report avoidance: a fact inside a file already policed by
//! the corresponding file-scoped rule (`no-panic-serving`'s
//! `SERVING_FILES`, `no-locks-on-hot-path`'s `HOT_PATH_FILES`) is the
//! file rule's finding, not ours — these rules exist precisely for the
//! helpers *outside* those lists.

use super::{no_locks, no_panic, RawFinding, Rule};
use crate::callgraph::CallGraph;
use crate::engine::Workspace;
use crate::reach::{reachable_from, Capability, ReachResult, ALLOC_ROOTS, SERVE_ROOTS};
use crate::report::{ChainStep, Severity};

/// Display symbol for a node: `Type::name` or `name`.
fn symbol(graph: &CallGraph, n: usize) -> String {
    let node = &graph.nodes[n];
    match &node.impl_type {
        Some(t) => format!("{}::{}", t, node.name),
        None => node.name.clone(),
    }
}

/// Witness chain root → … → `n` as report steps.
fn chain_steps(graph: &CallGraph, reach: &ReachResult, n: usize) -> Vec<ChainStep> {
    reach
        .witness(n)
        .into_iter()
        .map(|k| ChainStep {
            symbol: symbol(graph, k),
            path: graph.nodes[k].path.clone(),
            line: graph.nodes[k].line,
        })
        .collect()
}

/// Shared finder: facts of `cap` on nodes reachable from `roots`,
/// excluding files in `covered_by_file_rule`.
fn reachable_facts(
    graph: &CallGraph,
    roots: &[(&str, &str)],
    cap: Capability,
    covered_by_file_rule: &[&str],
    describe: impl Fn(&str, &str) -> String,
) -> Vec<RawFinding> {
    let reach = reachable_from(graph, roots);
    let mut out = Vec::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        if reach.pred[n].is_none() || covered_by_file_rule.contains(&node.path.as_str()) {
            continue;
        }
        for fact in &node.facts {
            if fact.cap != cap {
                continue;
            }
            let chain = chain_steps(graph, &reach, n);
            let root = chain.first().map(|c| c.symbol.clone()).unwrap_or_default();
            out.push(RawFinding {
                path: node.path.clone(),
                line: fact.line,
                col: fact.col,
                message: describe(&fact.what, &root),
                chain,
            });
        }
    }
    out
}

/// See module docs.
pub struct PanicReachableServing;

impl Rule for PanicReachableServing {
    fn id(&self) -> &'static str {
        "panic-reachable-serving"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect or panicking macro may be call-reachable from a serve entrypoint, in any file"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn workspace_scoped(&self) -> bool {
        true
    }

    fn check_graph(&self, _ws: &Workspace, graph: &CallGraph) -> Vec<RawFinding> {
        reachable_facts(
            graph,
            SERVE_ROOTS,
            Capability::Panic,
            no_panic::SERVING_FILES,
            |what, root| {
                format!(
                    "`{what}` may panic and is call-reachable from serve entrypoint `{root}`; \
                     return a Result/Option or prove the invariant locally"
                )
            },
        )
    }
}

/// See module docs.
pub struct LockReachableHotPath;

impl Rule for LockReachableHotPath {
    fn id(&self) -> &'static str {
        "lock-reachable-hot-path"
    }

    fn summary(&self) -> &'static str {
        "no lock or once-cell initialization may be call-reachable from a serve entrypoint, in any file"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn workspace_scoped(&self) -> bool {
        true
    }

    fn check_graph(&self, _ws: &Workspace, graph: &CallGraph) -> Vec<RawFinding> {
        reachable_facts(
            graph,
            SERVE_ROOTS,
            Capability::Lock,
            no_locks::HOT_PATH_FILES,
            |what, root| {
                format!(
                    "`{what}` can block and is call-reachable from serve entrypoint `{root}`; \
                     precompute at snapshot build time or use an immutable/static table"
                )
            },
        )
    }
}

/// See module docs.
pub struct AllocOnHotPath;

impl Rule for AllocOnHotPath {
    fn id(&self) -> &'static str {
        "alloc-on-hot-path"
    }

    fn summary(&self) -> &'static str {
        "the per-candidate scratch kernel must not allocate; reuse the epoch-stamped scratch pool"
    }

    fn default_severity(&self) -> Severity {
        Severity::Deny
    }

    fn workspace_scoped(&self) -> bool {
        true
    }

    fn check_graph(&self, _ws: &Workspace, graph: &CallGraph) -> Vec<RawFinding> {
        reachable_facts(graph, ALLOC_ROOTS, Capability::Alloc, &[], |what, root| {
            format!(
                "`{what}` allocates inside the per-candidate kernel (reachable from `{root}`); \
                 move the buffer into QueryScratch so warm queries run allocation-free"
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Workspace;

    fn graph_findings(rule: &dyn Rule, files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::from_memory(files, &[]);
        let graph = CallGraph::build(&ws);
        rule.check_graph(&ws, &graph)
    }

    #[test]
    fn panic_fact_behind_helper_is_reported_with_chain() {
        let found = graph_findings(
            &PanicReachableServing,
            &[
                (
                    "crates/core/src/search/serve.rs",
                    "impl Searcher {\n    pub fn query(&self) -> u32 { helper::compute(1) }\n}\n",
                ),
                (
                    "crates/core/src/search/helper.rs",
                    "pub fn compute(x: u32) -> u32 {\n    x.checked_add(1).unwrap()\n}\n",
                ),
            ],
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].path, "crates/core/src/search/helper.rs");
        assert_eq!(found[0].chain.len(), 2);
        assert_eq!(found[0].chain[0].symbol, "Searcher::query");
        assert!(found[0].message.contains("`.unwrap()`"));
    }

    #[test]
    fn facts_in_file_rule_territory_are_not_double_reported() {
        // serve.rs is SERVING_FILES: the file rule owns this unwrap.
        let found = graph_findings(
            &PanicReachableServing,
            &[(
                "crates/core/src/search/serve.rs",
                "impl Searcher {\n    pub fn query(&self) -> u32 { x.unwrap() }\n}\n",
            )],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unreachable_facts_are_silent() {
        let found = graph_findings(
            &PanicReachableServing,
            &[
                (
                    "crates/core/src/search/serve.rs",
                    "impl Searcher {\n    pub fn query(&self) -> u32 { 1 }\n}\n",
                ),
                (
                    "crates/core/src/offline.rs",
                    "pub fn build() {\n    x.unwrap();\n}\n",
                ),
            ],
        );
        assert!(found.is_empty(), "offline code may unwrap: {found:?}");
    }

    #[test]
    fn lock_rule_flags_once_init_behind_two_hops() {
        let found = graph_findings(
            &LockReachableHotPath,
            &[
                (
                    "crates/core/src/search/serve.rs",
                    "impl Searcher {\n    pub fn query(&self) { analyze(\"q\"); }\n}\npub fn analyze(s: &str) { stopwords::is_stopword(s); }\n",
                ),
                (
                    "crates/textproc/src/stopwords.rs",
                    "pub fn is_stopword(w: &str) -> bool {\n    SET.get_or_init(|| build())\n}\n",
                ),
            ],
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].path, "crates/textproc/src/stopwords.rs");
        assert!(found[0].chain.len() >= 3, "{:?}", found[0].chain);
    }

    #[test]
    fn alloc_rule_only_roots_at_the_kernel() {
        let files: &[(&str, &str)] = &[
            (
                "crates/core/src/search/scratch.rs",
                "impl QueryScratch {\n    pub fn score_context(&mut self) { columns::fold(self); }\n    pub fn ranked(&self) -> Vec<u32> { self.hits.to_vec() }\n}\n",
            ),
            (
                "crates/textproc/src/columns.rs",
                "pub fn fold(s: &mut Scratch) {\n    let v: Vec<u32> = s.iter().collect();\n}\n",
            ),
        ];
        let found = graph_findings(&AllocOnHotPath, files);
        // fold's collect is reachable from score_context -> finding;
        // ranked's own to_vec is result assembly, not a kernel root,
        // but ranked IS reachable? No: nothing calls ranked from the
        // alloc roots, and ranked itself is not an alloc root.
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].path, "crates/textproc/src/columns.rs");
        assert!(found[0].message.contains("`.collect()`"));
        assert_eq!(found[0].chain[0].symbol, "QueryScratch::score_context");
    }

    #[test]
    fn cycles_terminate_and_still_witness() {
        let found = graph_findings(
            &PanicReachableServing,
            &[
                (
                    "crates/core/src/search/serve.rs",
                    "impl Searcher {\n    pub fn query(&self) { a::ping(0); }\n}\n",
                ),
                (
                    "crates/core/src/a.rs",
                    "pub fn ping(d: u32) { pong(d); }\npub fn pong(d: u32) {\n    ping(d);\n    x.expect(\"boom\");\n}\n",
                ),
            ],
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`.expect()`"));
        let syms: Vec<&str> = found[0].chain.iter().map(|c| c.symbol.as_str()).collect();
        assert_eq!(syms, ["Searcher::query", "ping", "pong"]);
    }
}
