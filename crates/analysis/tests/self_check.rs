//! The lint suite run against its own workspace: the repository must
//! lint clean, and every suppression must be justified.
//!
//! This is the acceptance gate for the whole `analysis` crate — if a
//! rule over-approximates on real code, or someone lands a violation,
//! this test (and the CI `lint` job) fails.

use analysis::rules::span_coverage;
use analysis::{lint, LintConfig, Workspace};
use std::path::{Path, PathBuf};

/// The most suppressions the workspace is allowed to carry. More than
/// this means rules are being silenced instead of findings fixed.
const MAX_SUPPRESSIONS: usize = 10;

fn workspace_root() -> PathBuf {
    // crates/analysis -> crates -> root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean() {
    let ws = Workspace::from_root(&workspace_root()).expect("scan workspace");
    assert!(
        ws.files.len() > 50,
        "scanned only {} files — wrong root?",
        ws.files.len()
    );
    let report = lint(&ws, &LintConfig::default());
    assert_eq!(
        report.deny_count(),
        0,
        "deny findings in the workspace:\n{}",
        report.to_text()
    );
    assert_eq!(
        report.warn_count(),
        0,
        "warn findings in the workspace (CI runs --deny-warnings):\n{}",
        report.to_text()
    );
}

#[test]
fn suppressions_are_few_and_justified() {
    let ws = Workspace::from_root(&workspace_root()).expect("scan workspace");
    let report = lint(&ws, &LintConfig::default());
    assert!(
        report.suppressions.len() <= MAX_SUPPRESSIONS,
        "{} suppressions exceed the budget of {MAX_SUPPRESSIONS}:\n{}",
        report.suppressions.len(),
        report.to_text()
    );
    for s in &report.suppressions {
        assert!(
            s.reason.trim().len() >= 10,
            "suppression at {}:{} has a throwaway reason: {:?}",
            s.path,
            s.line,
            s.reason
        );
    }
}

#[test]
fn checked_in_span_registry_is_current() {
    // CI archives `results/span_registry.json` as the instrumentation
    // surface of record; the checked-in copy must match what the
    // scanner extracts from source right now. Regenerate with
    //   cargo run -p analysis -- --emit-registry results/span_registry.json
    let root = workspace_root();
    let ws = Workspace::from_root(&root).expect("scan workspace");
    let fresh = span_coverage::registry_json(&ws);
    let checked_in = std::fs::read_to_string(root.join("results/span_registry.json"))
        .expect("results/span_registry.json is checked in");
    assert_eq!(
        fresh, checked_in,
        "results/span_registry.json is stale; regenerate it with --emit-registry"
    );
}

#[test]
fn every_baseline_is_present_and_parsed() {
    let ws = Workspace::from_root(&workspace_root()).expect("scan workspace");
    assert_eq!(ws.baselines.len(), 4);
    for b in &ws.baselines {
        assert!(
            b.content.is_ok(),
            "baseline {} unreadable: {:?}",
            b.path,
            b.content
        );
    }
}
