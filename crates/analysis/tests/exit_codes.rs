//! End-to-end exit-code contract for the `litsearch-lint` binary:
//! `0` clean, `1` findings, `2` usage errors. CI keys off these, so
//! they are tested against the real executable, not the library.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_litsearch-lint");

const CLEAN_BASELINE: &str = r#"{"spans": []}"#;

/// A throwaway on-disk workspace the binary can `--root` into.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "litsearch-lint-fixture-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        let fx = Self { root };
        // A workspace manifest so discover_root-style logic sees a root,
        // and the four baselines span-name-drift insists on.
        fx.write("Cargo.toml", "[workspace]\nmembers = []\n");
        fx.write("results/metrics_baseline.json", CLEAN_BASELINE);
        fx.write("results/metrics_prepare_baseline.json", CLEAN_BASELINE);
        fx.write("results/metrics_warm_baseline.json", CLEAN_BASELINE);
        fx.write("results/quality_baseline.json", r#"{"series": []}"#);
        fx
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).expect("fixture dirs");
        fs::write(path, content).expect("fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("run binary")
}

fn root_arg(fx: &Fixture) -> String {
    fx.root.display().to_string()
}

#[test]
fn clean_fixture_exits_zero() {
    let fx = Fixture::new("clean");
    fx.write(
        "crates/core/src/search/serve.rs",
        "pub fn serve() -> Option<u32> {\n    Some(1)\n}\n",
    );
    let out = run(&["--root", &root_arg(&fx)]);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn seeded_panic_on_serving_path_exits_one_with_json_finding() {
    let fx = Fixture::new("seeded");
    fx.write(
        "crates/core/src/search/serve.rs",
        "pub fn serve(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let out = run(&["--root", &root_arg(&fx), "--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "deny finding must fail the run");
    let json = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(&json).expect("report is valid JSON");
    let findings = v.get("findings").and_then(|f| f.as_array()).unwrap();
    assert!(
        findings.iter().any(|f| {
            f.get("rule").and_then(|r| r.as_str()) == Some("no-panic-serving")
                && f.get("path").and_then(|p| p.as_str()) == Some("crates/core/src/search/serve.rs")
        }),
        "JSON report must carry the seeded finding: {json}"
    );
}

#[test]
fn gated_span_missing_from_source_exits_one() {
    let fx = Fixture::new("drift");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f() {\n    let _s = obs::span(\"engine.search\");\n}\n",
    );
    fx.write(
        "results/metrics_baseline.json",
        r#"{"spans": [{"name": "engine.search"}, {"name": "engine.renamed_away"}]}"#,
    );
    let out = run(&["--root", &root_arg(&fx), "--format", "text"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("span-coverage") && text.contains("engine.renamed_away"),
        "coverage finding must name the missing span: {text}"
    );
}

#[test]
fn warn_only_fixture_exits_zero_without_and_one_with_deny_warnings() {
    let fx = Fixture::new("warn");
    // hashmap-order-leak is warn severity by default.
    fx.write(
        "crates/core/src/lib.rs",
        "use std::collections::HashMap;\npub fn f(m: HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n",
    );
    let soft = run(&["--root", &root_arg(&fx)]);
    assert!(
        soft.status.success(),
        "warn-only must pass by default: {}",
        String::from_utf8_lossy(&soft.stdout)
    );
    let hard = run(&["--root", &root_arg(&fx), "--deny-warnings"]);
    assert_eq!(
        hard.status.code(),
        Some(1),
        "--deny-warnings must gate warns"
    );
}

#[test]
fn the_real_workspace_exits_zero_under_deny_warnings() {
    // crates/analysis -> crates -> root
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = run(&[
        "--root",
        &root.display().to_string(),
        "--deny-warnings",
        "--format",
        "json",
    ]);
    assert!(
        out.status.success(),
        "the workspace must lint clean (this is the CI gate):\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn usage_errors_exit_two() {
    for bad in [
        &["--no-such-flag"][..],
        &["--format", "yaml"][..],
        &["--deny", "no-such-rule"][..],
        &["--root"][..],
    ] {
        let out = run(bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("litsearch-lint: error:"),
            "args {bad:?}"
        );
    }
}

#[test]
fn list_rules_names_all_ten() {
    let out = run(&["--list-rules"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-panic-serving",
        "no-locks-on-hot-path",
        "float-total-order",
        "no-wallclock-outside-obs",
        "span-name-drift",
        "span-coverage",
        "hashmap-order-leak",
        "panic-reachable-serving",
        "lock-reachable-hot-path",
        "alloc-on-hot-path",
    ] {
        assert!(text.contains(rule), "--list-rules missing {rule}: {text}");
    }
}

#[test]
fn paths_fast_mode_checks_only_the_listed_files() {
    let fx = Fixture::new("fastmode");
    // Listed file has a per-file violation; the unlisted file has one
    // too; the baseline gates a span nobody defines (a workspace-rule
    // violation fast mode must NOT evaluate).
    fx.write(
        "crates/core/src/search/serve.rs",
        "pub fn serve(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    fx.write(
        "crates/core/src/search/select.rs",
        "pub fn pick(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    fx.write(
        "results/metrics_baseline.json",
        r#"{"spans": [{"name": "engine.gone_forever"}]}"#,
    );
    let out = run(&[
        "--root",
        &root_arg(&fx),
        "--paths",
        "crates/core/src/search/serve.rs",
        "--format",
        "json",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "listed violation must still fail"
    );
    let json = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let rules: Vec<&str> = v["findings"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|f| f["rule"].as_str())
        .collect();
    assert!(rules.contains(&"no-panic-serving"), "{json}");
    assert!(
        !json.contains("select.rs"),
        "unlisted file must not be scanned: {json}"
    );
    assert!(
        !rules.contains(&"span-coverage"),
        "workspace rules must be skipped in fast mode: {json}"
    );
}

#[test]
fn paths_cannot_combine_with_emit_flags() {
    let out = run(&["--paths", "src/lib.rs", "--emit-callgraph", "cg.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("full workspace scan"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn emit_callgraph_and_registry_write_artifacts() {
    let fx = Fixture::new("emit");
    fx.write(
        "crates/core/src/search/serve.rs",
        "impl Searcher {\n    pub fn query(&self) -> u32 {\n        obs::span(\"serve.query\");\n        helper()\n    }\n}\nfn helper() -> u32 { 1 }\n",
    );
    let dot = fx.root.join("callgraph.dot");
    let json = fx.root.join("callgraph.json");
    let reg = fx.root.join("span_registry.json");
    let out = run(&[
        "--root",
        &root_arg(&fx),
        "--emit-callgraph",
        &dot.display().to_string(),
        "--emit-registry",
        &reg.display().to_string(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let dot_text = fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("digraph callgraph"), "{dot_text}");
    assert!(dot_text.contains("Searcher::query"), "{dot_text}");
    let reg_text = fs::read_to_string(&reg).expect("registry written");
    let v: serde_json::Value = serde_json::from_str(&reg_text).expect("registry is JSON");
    assert!(
        v["names"]
            .as_array()
            .unwrap()
            .iter()
            .any(|n| n["name"] == "serve.query"),
        "{reg_text}"
    );
    // A non-.dot extension switches to the JSON rendering.
    let out = run(&[
        "--root",
        &root_arg(&fx),
        "--emit-callgraph",
        &json.display().to_string(),
    ]);
    assert!(out.status.success());
    let cg: serde_json::Value =
        serde_json::from_str(&fs::read_to_string(&json).expect("json written"))
            .expect("call graph is JSON");
    assert!(cg.get("nodes").is_some() && cg.get("edges").is_some());
}

#[test]
fn report_lands_in_out_file() {
    let fx = Fixture::new("outfile");
    fx.write("crates/core/src/lib.rs", "pub fn f() {}\n");
    let report = fx.root.join("lint-report.json");
    let out = run(&[
        "--root",
        &root_arg(&fx),
        "--format",
        "json",
        "--out",
        &report.display().to_string(),
    ]);
    assert!(out.status.success());
    let written = fs::read_to_string(&report).expect("report file written");
    let v: serde_json::Value = serde_json::from_str(&written).expect("valid JSON report");
    assert!(v.get("files_scanned").is_some());
}
