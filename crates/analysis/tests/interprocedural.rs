//! Fixture-workspace integration tests for the interprocedural rules,
//! run through the full `lint()` pipeline (call-graph build included),
//! not through `check_graph` directly. Each rule gets a positive case
//! whose witness chain crosses at least two files, a negative case
//! where the fix makes the finding disappear, and the suite ends with
//! cycle-termination and byte-identical-output determinism checks.

use analysis::{lint, LintConfig, Workspace};

fn report(files: &[(&str, &str)]) -> analysis::LintReport {
    lint(&Workspace::from_memory(files, &[]), &LintConfig::default())
}

fn findings_for<'r>(r: &'r analysis::LintReport, rule: &str) -> Vec<&'r analysis::report::Finding> {
    r.findings.iter().filter(|f| f.rule == rule).collect()
}

// --- panic-reachable-serving -------------------------------------------

const SERVE_CALLS_HELPER: (&str, &str) = (
    "crates/core/src/search/serve.rs",
    "impl Searcher {\n    pub fn query(&self, q: &str) -> u32 {\n        helper::compute(q.len() as u32)\n    }\n}\n",
);

#[test]
fn panic_two_file_chain_reported_through_lint() {
    let r = report(&[
        SERVE_CALLS_HELPER,
        (
            "crates/core/src/search/helper.rs",
            "pub fn compute(x: u32) -> u32 {\n    x.checked_add(1).unwrap()\n}\n",
        ),
    ]);
    let found = findings_for(&r, "panic-reachable-serving");
    assert_eq!(found.len(), 1, "{}", r.to_text());
    let f = found[0];
    assert_eq!(f.path, "crates/core/src/search/helper.rs");
    // The witness chain crosses two files: serve.rs -> helper.rs.
    assert_eq!(f.chain.len(), 2, "{:?}", f.chain);
    assert_eq!(f.chain[0].symbol, "Searcher::query");
    assert_eq!(f.chain[0].path, "crates/core/src/search/serve.rs");
    assert_eq!(f.chain[1].path, "crates/core/src/search/helper.rs");
    // All three renderers carry the chain.
    assert!(r.to_text().contains("call chain: Searcher::query"));
    assert!(r.to_json().contains("\"chain\""));
    assert!(r.to_markdown().contains("chain:"));
}

#[test]
fn panic_finding_disappears_after_the_fix() {
    let r = report(&[
        SERVE_CALLS_HELPER,
        (
            "crates/core/src/search/helper.rs",
            "pub fn compute(x: u32) -> u32 {\n    x.saturating_add(1)\n}\n",
        ),
    ]);
    assert!(
        findings_for(&r, "panic-reachable-serving").is_empty(),
        "{}",
        r.to_text()
    );
    assert_eq!(r.deny_count(), 0, "{}", r.to_text());
}

// --- lock-reachable-hot-path -------------------------------------------

#[test]
fn lock_two_file_chain_reported_through_lint() {
    let r = report(&[
        (
            "crates/core/src/search/serve.rs",
            "impl Searcher {\n    pub fn query(&self, q: &str) -> bool {\n        textproc::is_stopword(q)\n    }\n}\n",
        ),
        (
            "crates/textproc/src/lib.rs",
            "pub fn is_stopword(w: &str) -> bool {\n    SET.get_or_init(build_set).contains(w)\n}\n",
        ),
    ]);
    let found = findings_for(&r, "lock-reachable-hot-path");
    assert_eq!(found.len(), 1, "{}", r.to_text());
    assert_eq!(found[0].path, "crates/textproc/src/lib.rs");
    assert_eq!(found[0].chain.len(), 2, "{:?}", found[0].chain);
    assert_eq!(found[0].chain[0].symbol, "Searcher::query");
}

#[test]
fn lock_finding_disappears_after_the_fix() {
    let r = report(&[
        (
            "crates/core/src/search/serve.rs",
            "impl Searcher {\n    pub fn query(&self, q: &str) -> bool {\n        textproc::is_stopword(q)\n    }\n}\n",
        ),
        (
            "crates/textproc/src/lib.rs",
            "pub fn is_stopword(w: &str) -> bool {\n    WORDS.binary_search(&w).is_ok()\n}\n",
        ),
    ]);
    assert!(
        findings_for(&r, "lock-reachable-hot-path").is_empty(),
        "{}",
        r.to_text()
    );
}

// --- alloc-on-hot-path -------------------------------------------------

#[test]
fn alloc_two_file_chain_reported_through_lint() {
    let r = report(&[
        (
            "crates/core/src/search/scratch.rs",
            "impl QueryScratch {\n    pub fn score_context(&mut self) {\n        kernel::fold(self)\n    }\n}\n",
        ),
        (
            "crates/core/src/search/kernel.rs",
            "pub fn fold(s: &mut QueryScratch) {\n    let v: Vec<u32> = s.ids.iter().copied().collect();\n    s.acc = v.len() as u32;\n}\n",
        ),
    ]);
    let found = findings_for(&r, "alloc-on-hot-path");
    assert_eq!(found.len(), 1, "{}", r.to_text());
    assert_eq!(found[0].path, "crates/core/src/search/kernel.rs");
    assert_eq!(found[0].chain[0].symbol, "QueryScratch::score_context");
    assert!(found[0].message.contains("QueryScratch"));
}

#[test]
fn alloc_finding_disappears_after_the_fix() {
    let r = report(&[
        (
            "crates/core/src/search/scratch.rs",
            "impl QueryScratch {\n    pub fn score_context(&mut self) {\n        kernel::fold(self)\n    }\n}\n",
        ),
        (
            "crates/core/src/search/kernel.rs",
            "pub fn fold(s: &mut QueryScratch) {\n    s.acc = s.ids.iter().copied().sum();\n}\n",
        ),
    ]);
    assert!(
        findings_for(&r, "alloc-on-hot-path").is_empty(),
        "{}",
        r.to_text()
    );
}

// --- cycle termination and determinism ---------------------------------

#[test]
fn recursive_call_cycles_terminate_with_a_witness() {
    let r = report(&[
        SERVE_CALLS_HELPER,
        (
            "crates/core/src/search/helper.rs",
            "pub fn compute(d: u32) -> u32 { other(d) }\npub fn other(d: u32) -> u32 {\n    if d > 0 { return compute(d - 1); }\n    FALLBACK.expect(\"exhausted\")\n}\n",
        ),
    ]);
    let found = findings_for(&r, "panic-reachable-serving");
    assert_eq!(found.len(), 1, "{}", r.to_text());
    let syms: Vec<&str> = found[0].chain.iter().map(|c| c.symbol.as_str()).collect();
    assert_eq!(syms, ["Searcher::query", "compute", "other"]);
}

#[test]
fn lint_json_is_byte_identical_across_runs() {
    let files: &[(&str, &str)] = &[
        SERVE_CALLS_HELPER,
        (
            "crates/core/src/search/helper.rs",
            "pub fn compute(x: u32) -> u32 {\n    let label = format!(\"q{x}\");\n    GLOBAL.lock().insert(label).unwrap()\n}\n",
        ),
        (
            "crates/textproc/src/lib.rs",
            "pub fn tokenize(s: &str) -> Vec<String> {\n    s.split(' ').map(str::to_string).collect()\n}\n",
        ),
    ];
    let a = lint(&Workspace::from_memory(files, &[]), &LintConfig::default()).to_json();
    let b = lint(&Workspace::from_memory(files, &[]), &LintConfig::default()).to_json();
    assert_eq!(a, b, "report JSON must be deterministic");
    assert!(a.contains("panic-reachable-serving"), "{a}");
    assert!(a.contains("lock-reachable-hot-path"), "{a}");
    let g1 = analysis::callgraph::CallGraph::build(&Workspace::from_memory(files, &[]));
    let g2 = analysis::callgraph::CallGraph::build(&Workspace::from_memory(files, &[]));
    assert_eq!(
        g1.to_json(),
        g2.to_json(),
        "call-graph JSON must be deterministic"
    );
    assert_eq!(
        g1.to_dot(),
        g2.to_dot(),
        "call-graph DOT must be deterministic"
    );
}
