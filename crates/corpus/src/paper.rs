//! The paper record and its sections.

use ontology::TermId;
use serde::{Deserialize, Serialize};

/// Dense identifier of a paper within a [`crate::Corpus`]. Doubles as
/// the node index in the corpus citation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PaperId(pub u32);

impl PaperId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense identifier of an author.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AuthorId(pub u32);

impl AuthorId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The text sections of a full-text paper the paper's similarity
/// functions distinguish (§3.2: title, abstract, body, index terms —
/// authors and references are handled as non-text components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Section {
    /// Paper title.
    Title,
    /// Abstract.
    Abstract,
    /// Full body text.
    Body,
    /// Index terms / keywords.
    IndexTerms,
}

impl Section {
    /// All sections, in conventional order.
    pub const ALL: [Section; 4] = [
        Section::Title,
        Section::Abstract,
        Section::Body,
        Section::IndexTerms,
    ];
}

/// One full-text paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Paper {
    /// This paper's id (== its position in the corpus).
    pub id: PaperId,
    /// Title text.
    pub title: String,
    /// Abstract text.
    pub abstract_text: String,
    /// Body text.
    pub body: String,
    /// Index terms (keywords), already phrase-separated.
    pub index_terms: Vec<String>,
    /// Authors, in byline order.
    pub authors: Vec<AuthorId>,
    /// Reference list: papers this paper cites.
    pub references: Vec<PaperId>,
    /// Publication year.
    pub year: u16,
    /// Generator ground truth: the ontology terms this paper is about
    /// (first = primary topic). Used only for evidence-set construction
    /// and diagnostics — score functions never see it.
    pub true_topics: Vec<TermId>,
}

impl Paper {
    /// Raw text of one section (index terms joined by "; ").
    pub fn section_text(&self, section: Section) -> String {
        match section {
            Section::Title => self.title.clone(),
            Section::Abstract => self.abstract_text.clone(),
            Section::Body => self.body.clone(),
            Section::IndexTerms => self.index_terms.join("; "),
        }
    }

    /// All text concatenated (for whole-paper indexing).
    pub fn full_text(&self) -> String {
        let mut s = String::with_capacity(
            self.title.len() + self.abstract_text.len() + self.body.len() + 64,
        );
        s.push_str(&self.title);
        s.push_str(". ");
        s.push_str(&self.abstract_text);
        s.push(' ');
        s.push_str(&self.body);
        s.push(' ');
        s.push_str(&self.index_terms.join(" "));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Paper {
        Paper {
            id: PaperId(7),
            title: "histone binding".into(),
            abstract_text: "we study histone binding".into(),
            body: "long body text".into(),
            index_terms: vec!["histone".into(), "chromatin".into()],
            authors: vec![AuthorId(1), AuthorId(2)],
            references: vec![PaperId(3)],
            year: 2001,
            true_topics: vec![],
        }
    }

    #[test]
    fn section_text_selects_sections() {
        let p = sample();
        assert_eq!(p.section_text(Section::Title), "histone binding");
        assert_eq!(p.section_text(Section::IndexTerms), "histone; chromatin");
    }

    #[test]
    fn full_text_contains_all_sections() {
        let p = sample();
        let t = p.full_text();
        for part in ["histone binding", "we study", "long body", "chromatin"] {
            assert!(t.contains(part), "missing {part}");
        }
    }

    #[test]
    fn ids_index() {
        assert_eq!(PaperId(5).index(), 5);
        assert_eq!(AuthorId(9).index(), 9);
    }
}
