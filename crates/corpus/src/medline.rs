//! MEDLINE-style flat-file import/export.
//!
//! The paper's testbed was built by downloading and parsing PubMed
//! papers; PubMed's exchange format is the tagged MEDLINE flat file.
//! This module reads and writes that shape so real (non-synthetic)
//! collections can be loaded:
//!
//! ```text
//! PMID- 7
//! TI  - Histone binding in chromatin assembly
//! AB  - We study histone binding and
//!       its role in assembly.
//! FT  - Full body text (non-standard tag: MEDLINE has no full text).
//! AU  - Smith J
//! AU  - Doe A
//! MH  - histone
//! MH  - chromatin
//! CR  - 3
//! DP  - 2003
//! ```
//!
//! Records are separated by blank lines; continuation lines are
//! indented six spaces. `CR` (cited reference, by PMID) and `FT` (full
//! text) are our extensions — standard MEDLINE carries neither
//! reference lists nor bodies. Unknown tags are ignored. References to
//! unknown PMIDs are dropped with a warning count (PubMed exports
//! routinely cite outside the downloaded subset — the paper's 72k
//! papers did too).

use crate::paper::{AuthorId, Paper, PaperId};
use std::collections::HashMap;
use std::fmt;

/// Parse error with a 1-based line number.
#[derive(Debug)]
pub struct MedlineError {
    /// 1-based line of the offence.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for MedlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MedlineError {}

/// Result of a MEDLINE import.
#[derive(Debug)]
pub struct MedlineImport {
    /// Parsed papers with dense ids (in file order).
    pub papers: Vec<Paper>,
    /// Author display names by [`AuthorId`].
    pub author_names: Vec<String>,
    /// Original PMID per paper (papers get dense ids; this maps back).
    pub pmids: Vec<u64>,
    /// Count of `CR` references pointing outside the file (dropped).
    pub dangling_references: usize,
}

#[derive(Default)]
struct Record {
    pmid: Option<u64>,
    title: String,
    abstract_text: String,
    body: String,
    authors: Vec<String>,
    index_terms: Vec<String>,
    references: Vec<u64>,
    year: u16,
}

/// Parse MEDLINE-style text into papers.
pub fn parse_medline(text: &str) -> Result<MedlineImport, MedlineError> {
    let mut records: Vec<Record> = Vec::new();
    let mut current: Option<Record> = None;
    let mut last_field: Option<&'static str> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        if raw.trim().is_empty() {
            if let Some(r) = current.take() {
                records.push(r);
            }
            last_field = None;
            continue;
        }
        // Continuation line: six leading spaces.
        if let Some(cont) = raw.strip_prefix("      ") {
            let rec = current.as_mut().ok_or_else(|| MedlineError {
                line: line_no,
                message: "continuation line outside a record".into(),
            })?;
            let field = last_field.ok_or_else(|| MedlineError {
                line: line_no,
                message: "continuation line without a preceding tag".into(),
            })?;
            append_continuation(rec, field, cont.trim());
            continue;
        }
        let (tag, value) = split_tag(raw).ok_or_else(|| MedlineError {
            line: line_no,
            message: format!("expected `TAG - value`, got {raw:?}"),
        })?;
        let rec = current.get_or_insert_with(Record::default);
        last_field = match tag {
            "PMID" => {
                rec.pmid = Some(value.parse().map_err(|_| MedlineError {
                    line: line_no,
                    message: format!("bad PMID {value:?}"),
                })?);
                None
            }
            "TI" => {
                rec.title = value.to_string();
                Some("TI")
            }
            "AB" => {
                rec.abstract_text = value.to_string();
                Some("AB")
            }
            "FT" => {
                rec.body = value.to_string();
                Some("FT")
            }
            "AU" => {
                rec.authors.push(value.to_string());
                None
            }
            "MH" => {
                rec.index_terms.push(value.to_string());
                None
            }
            "CR" => {
                rec.references.push(value.parse().map_err(|_| MedlineError {
                    line: line_no,
                    message: format!("bad CR pmid {value:?}"),
                })?);
                None
            }
            "DP" => {
                // MEDLINE DP can be "2003 Jan"; take the leading year.
                let year_token = value.split_whitespace().next().unwrap_or("");
                rec.year = year_token.parse().map_err(|_| MedlineError {
                    line: line_no,
                    message: format!("bad DP year {value:?}"),
                })?;
                None
            }
            _ => None, // unknown tags ignored, no continuation capture
        };
    }
    if let Some(r) = current.take() {
        records.push(r);
    }

    // Assign dense ids; intern authors; resolve references.
    let mut pmid_to_id: HashMap<u64, PaperId> = HashMap::with_capacity(records.len());
    let mut pmids = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let pmid = r.pmid.ok_or_else(|| MedlineError {
            line: 0,
            message: format!("record #{i} has no PMID"),
        })?;
        if pmid_to_id.insert(pmid, PaperId(i as u32)).is_some() {
            return Err(MedlineError {
                line: 0,
                message: format!("duplicate PMID {pmid}"),
            });
        }
        pmids.push(pmid);
    }
    let mut author_ids: HashMap<String, AuthorId> = HashMap::new();
    let mut author_names: Vec<String> = Vec::new();
    let mut dangling = 0usize;
    let papers: Vec<Paper> = records
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let authors = r
                .authors
                .iter()
                .map(|name| {
                    *author_ids.entry(name.clone()).or_insert_with(|| {
                        author_names.push(name.clone());
                        AuthorId(author_names.len() as u32 - 1)
                    })
                })
                .collect();
            let mut references: Vec<PaperId> = r
                .references
                .iter()
                .filter_map(|pmid| {
                    let id = pmid_to_id.get(pmid).copied();
                    if id.is_none() {
                        dangling += 1;
                    }
                    id
                })
                .collect();
            references.sort_unstable();
            references.dedup();
            Paper {
                id: PaperId(i as u32),
                title: r.title,
                abstract_text: r.abstract_text,
                body: r.body,
                index_terms: r.index_terms,
                authors,
                references,
                year: r.year,
                true_topics: Vec::new(), // unknown for imported data
            }
        })
        .collect();
    Ok(MedlineImport {
        papers,
        author_names,
        pmids,
        dangling_references: dangling,
    })
}

fn split_tag(line: &str) -> Option<(&str, &str)> {
    // Format: `TAG- value` with the tag padded to four chars: "PMID- ",
    // "TI  - ", "AB  - " …
    let dash = line.find('-')?;
    let tag = line[..dash].trim();
    if tag.is_empty() || tag.len() > 4 {
        return None;
    }
    Some((tag, line[dash + 1..].trim()))
}

fn append_continuation(rec: &mut Record, field: &str, text: &str) {
    let target = match field {
        "TI" => &mut rec.title,
        "AB" => &mut rec.abstract_text,
        "FT" => &mut rec.body,
        _ => return,
    };
    if !target.is_empty() {
        target.push(' ');
    }
    target.push_str(text);
}

/// Serialize papers to MEDLINE-style text (round-trippable by
/// [`parse_medline`]). `author_name` maps ids to display names; paper
/// ids are written as PMIDs directly.
pub fn write_medline<'a>(
    papers: impl IntoIterator<Item = &'a Paper>,
    author_name: impl Fn(AuthorId) -> String,
) -> String {
    let mut out = String::new();
    for p in papers {
        out.push_str(&format!("PMID- {}\n", p.id.0));
        out.push_str(&format!("TI  - {}\n", p.title));
        if !p.abstract_text.is_empty() {
            out.push_str(&format!("AB  - {}\n", p.abstract_text));
        }
        if !p.body.is_empty() {
            out.push_str(&format!("FT  - {}\n", p.body));
        }
        for &a in &p.authors {
            out.push_str(&format!("AU  - {}\n", author_name(a)));
        }
        for t in &p.index_terms {
            out.push_str(&format!("MH  - {t}\n"));
        }
        for &r in &p.references {
            out.push_str(&format!("CR  - {}\n", r.0));
        }
        out.push_str(&format!("DP  - {}\n\n", p.year));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
PMID- 100
TI  - Histone binding in chromatin
      assembly pathways
AB  - We study histone binding.
FT  - Long body text here.
AU  - Smith J
AU  - Doe A
MH  - histone
MH  - chromatin assembly
DP  - 2003 Jan

PMID- 200
TI  - Kinase signaling
AB  - Signaling cascades.
AU  - Doe A
CR  - 100
CR  - 999
DP  - 2005
";

    #[test]
    fn parses_records_and_fields() {
        let imp = parse_medline(SAMPLE).unwrap();
        assert_eq!(imp.papers.len(), 2);
        let p0 = &imp.papers[0];
        assert_eq!(p0.title, "Histone binding in chromatin assembly pathways");
        assert_eq!(p0.abstract_text, "We study histone binding.");
        assert_eq!(p0.body, "Long body text here.");
        assert_eq!(p0.index_terms, vec!["histone", "chromatin assembly"]);
        assert_eq!(p0.year, 2003);
        assert_eq!(imp.pmids, vec![100, 200]);
    }

    #[test]
    fn authors_are_interned_across_records() {
        let imp = parse_medline(SAMPLE).unwrap();
        // "Doe A" appears in both papers with the same id.
        let doe0 = imp.papers[0].authors[1];
        let doe1 = imp.papers[1].authors[0];
        assert_eq!(doe0, doe1);
        assert_eq!(imp.author_names.len(), 2);
        assert_eq!(imp.author_names[doe0.index()], "Doe A");
    }

    #[test]
    fn references_resolve_by_pmid_and_dangling_are_counted() {
        let imp = parse_medline(SAMPLE).unwrap();
        assert_eq!(imp.papers[1].references, vec![PaperId(0)]);
        assert_eq!(imp.dangling_references, 1); // CR 999
    }

    #[test]
    fn round_trip_through_writer() {
        let imp = parse_medline(SAMPLE).unwrap();
        let names = imp.author_names.clone();
        let text = write_medline(&imp.papers, |a| names[a.index()].clone());
        let again = parse_medline(&text).unwrap();
        assert_eq!(again.papers.len(), imp.papers.len());
        for (a, b) in imp.papers.iter().zip(&again.papers) {
            assert_eq!(a.title, b.title);
            assert_eq!(a.abstract_text, b.abstract_text);
            assert_eq!(a.index_terms, b.index_terms);
            assert_eq!(a.year, b.year);
        }
        assert_eq!(again.dangling_references, 0);
    }

    #[test]
    fn duplicate_pmid_is_an_error() {
        let text = "PMID- 1\nTI  - a\n\nPMID- 1\nTI  - b\n";
        let err = parse_medline(text).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn missing_pmid_is_an_error() {
        let text = "TI  - no id here\n";
        assert!(parse_medline(text).is_err());
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let text = "PMID- 1\nthis is not a tagged line\n";
        let err = parse_medline(text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn continuation_outside_record_is_an_error() {
        let text = "      dangling continuation\n";
        assert!(parse_medline(text).is_err());
    }

    #[test]
    fn unknown_tags_are_ignored() {
        let text = "PMID- 1\nTI  - t\nXX  - ignored\nDP  - 1999\n";
        let imp = parse_medline(text).unwrap();
        assert_eq!(imp.papers[0].year, 1999);
    }

    proptest::proptest! {
        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(input in "[\x20-\x7e\n]{0,400}") {
            let _ = parse_medline(&input);
        }

        /// Random simple records round-trip.
        #[test]
        fn random_records_round_trip(
            titles in proptest::collection::vec("[a-z ]{1,30}", 1..8),
        ) {
            let papers: Vec<Paper> = titles
                .iter()
                .enumerate()
                .map(|(i, t)| Paper {
                    id: PaperId(i as u32),
                    title: t.trim().to_string(),
                    abstract_text: String::new(),
                    body: String::new(),
                    index_terms: vec![],
                    authors: vec![],
                    references: if i > 0 { vec![PaperId(0)] } else { vec![] },
                    year: 2000,
                    true_topics: vec![],
                })
                .collect();
            let text = write_medline(&papers, |_| "A".to_string());
            let imported = parse_medline(&text).expect("round-trip");
            proptest::prop_assert_eq!(imported.papers.len(), papers.len());
            for (a, b) in papers.iter().zip(&imported.papers) {
                // Writer emits trimmed titles; empty stays empty.
                proptest::prop_assert_eq!(a.title.trim(), b.title.as_str());
                proptest::prop_assert_eq!(&a.references, &b.references);
            }
        }
    }

    #[test]
    fn imported_papers_build_a_corpus() {
        let imp = parse_medline(SAMPLE).unwrap();
        let corpus = crate::Corpus::new(imp.papers, imp.author_names, Default::default(), &[]);
        assert_eq!(corpus.len(), 2);
        assert!(corpus.vocab().get("histon").is_some());
        assert_eq!(corpus.citation_edges(), vec![(1, 0)]);
    }
}
