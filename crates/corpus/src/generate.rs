//! Synthetic PubMed-like corpus generation.
//!
//! The stand-in for the 72,027 full-text genomics papers of the paper's
//! experiments. Each paper is *about* one to three ontology terms (its
//! topics); its text mixes a Zipf background vocabulary with the topic
//! terms' language models; its authors come from per-branch author
//! communities; its references prefer same-topic papers with a
//! configurable locality (the cross-context leak that makes in-context
//! citation graphs sparse — the mechanism behind the paper's headline
//! finding, see DESIGN.md).
//!
//! Every ontology term's language model consists of its (raw) name
//! words — compositional with its ancestors', thanks to the ontology
//! generator — plus a few rare gene-symbol-like *signature words* of
//! its own, plus diluted ancestor signature words. Deeper terms thus
//! have more specific vocabularies, exactly the property the paper's
//! per-level observations hinge on.
//!
//! Crucially, each paper uses only a random *subset* of its topics'
//! signature words — the synthetic analogue of synonymy/vocabulary
//! mismatch in real literature. Without it, every topical paper would
//! contain every topical keyword, keyword search would be a
//! near-perfect ranker, and prestige scores could only add noise.

use crate::paper::{AuthorId, Paper, PaperId};
use crate::store::Corpus;
use crate::words::{synth_signature, synth_word, ZipfVocabulary};
use ontology::{Ontology, TermId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Configuration for [`generate_corpus`].
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of papers to generate.
    pub n_papers: usize,
    /// RNG seed (full determinism given config + ontology).
    pub seed: u64,
    /// Background vocabulary size.
    pub background_vocab: usize,
    /// Zipf exponent for background word frequencies.
    pub zipf_exponent: f64,
    /// Title length range (tokens).
    pub title_len: (usize, usize),
    /// Abstract length range (tokens).
    pub abstract_len: (usize, usize),
    /// Body length range (tokens).
    pub body_len: (usize, usize),
    /// Number of index-term entries per paper.
    pub n_index_terms: (usize, usize),
    /// Fraction of abstract/body tokens drawn from topic models (titles
    /// use a higher, fixed ratio).
    pub topic_token_ratio: f64,
    /// Additional topic-token ratio per level of the primary topic
    /// below the minimum topic level: papers on deeper (more
    /// specialized) topics use denser shared terminology, so their
    /// within-topic text similarity is higher — the property behind the
    /// paper's Fig 5.5 (text separability improves with depth).
    pub depth_ratio_boost: f64,
    /// Probability that a topic draw emits the full term-name phrase
    /// contiguously (what pattern mining later finds).
    pub phrase_prob: f64,
    /// Mean reference-list length.
    pub mean_references: f64,
    /// Probability a reference targets a same-topic earlier paper; the
    /// remainder goes to random earlier papers (cross-context noise).
    pub citation_locality: f64,
    /// Strength of preferential attachment (rich-get-richer): the
    /// probability that a reference choice is a "fame tournament"
    /// between candidates, won by the most-cited one. Real citation
    /// graphs are fame-driven — citation counts reflect prominence, not
    /// relevance to any particular query — which is what makes
    /// citation-based prestige a noisy relevance signal (the paper's
    /// central finding).
    pub preferential_attachment: f64,
    /// Number of authors (0 ⇒ `n_papers / 4`, min 8).
    pub n_authors: usize,
    /// Authors per paper range.
    pub authors_per_paper: (usize, usize),
    /// Probability an author slot is filled from the paper's topic
    /// community rather than at random.
    pub author_community_locality: f64,
    /// Evidence (training) papers recorded per term, taken from papers
    /// whose *primary* topic is the term.
    pub evidence_per_term: usize,
    /// Signature words per ontology term.
    pub signature_words_per_term: usize,
    /// Topics are sampled from terms at this level or deeper.
    pub min_topic_level: u32,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            n_papers: 4000,
            seed: 7,
            background_vocab: 4000,
            zipf_exponent: 1.05,
            title_len: (6, 12),
            abstract_len: (60, 110),
            body_len: (180, 340),
            n_index_terms: (4, 8),
            topic_token_ratio: 0.38,
            depth_ratio_boost: 0.05,
            phrase_prob: 0.28,
            mean_references: 12.0,
            citation_locality: 0.55,
            preferential_attachment: 0.7,
            n_authors: 0,
            authors_per_paper: (2, 6),
            author_community_locality: 0.7,
            evidence_per_term: 5,
            signature_words_per_term: 4,
            min_topic_level: 2,
        }
    }
}

/// Per-term language model.
struct TopicModel {
    /// Weighted non-signature word pool (name words + diluted ancestor
    /// signatures; raw surface forms, analysis stems later).
    words: Vec<String>,
    cumulative: Vec<f64>,
    /// The raw term name split into words, emitted contiguously on
    /// phrase draws.
    name_phrase: Vec<String>,
    /// This term's own signature words (papers use a per-paper subset).
    signatures: Vec<String>,
}

impl TopicModel {
    fn sample_nonsig<'a, R: Rng>(&'a self, rng: &mut R) -> &'a str {
        let total = *self.cumulative.last().expect("non-empty topic model");
        let x = rng.gen_range(0.0..total);
        let i = self.cumulative.partition_point(|&c| c < x);
        &self.words[i.min(self.words.len() - 1)]
    }
}

/// The signature words of one topic that one particular paper uses.
struct PaperTopicView {
    topic: TermId,
    sig_subset: Vec<usize>,
}

fn choose_signature_subsets<R: Rng>(
    rng: &mut R,
    topics: &[TermId],
    models: &[TopicModel],
) -> Vec<PaperTopicView> {
    topics
        .iter()
        .map(|&t| {
            let n = models[t.index()].signatures.len();
            let keep = n.div_ceil(2).max(1).min(n.max(1));
            let mut idx: Vec<usize> = (0..n).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            idx.truncate(keep);
            PaperTopicView {
                topic: t,
                sig_subset: idx,
            }
        })
        .collect()
}

/// Generate a corpus over `ontology` per `config`.
///
/// # Panics
/// Panics if the ontology is empty.
pub fn generate_corpus(ontology: &Ontology, config: &CorpusConfig) -> Corpus {
    assert!(!ontology.is_empty(), "cannot generate over empty ontology");
    let _span = obs::span("corpus.generate");
    obs::gauge("corpus.generate.papers", config.n_papers as f64);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let background = ZipfVocabulary::generate(
        &mut rng,
        config.background_vocab.max(100),
        config.zipf_exponent,
    );

    // Per-term signature words, in topo order so ancestors exist first.
    let n_terms = ontology.len();
    let mut signatures: Vec<Vec<String>> = vec![Vec::new(); n_terms];
    for &t in ontology.topological_order() {
        signatures[t.index()] = (0..config.signature_words_per_term)
            .map(|_| synth_signature(&mut rng))
            .collect();
    }

    // Topic models.
    let topics: Vec<TopicModel> = ontology
        .term_ids()
        .map(|t| build_topic_model(ontology, t, &signatures))
        .collect();

    // Eligible topic terms.
    let mut eligible: Vec<TermId> = ontology
        .term_ids()
        .filter(|&t| ontology.level(t) >= config.min_topic_level)
        .collect();
    if eligible.is_empty() {
        eligible = ontology.term_ids().collect();
    }

    // Author communities: one community per level-2 branch.
    let branches = branch_of_terms(ontology);
    let n_branches = branches.iter().copied().max().map_or(1, |m| m + 1);
    let n_authors = if config.n_authors > 0 {
        config.n_authors
    } else {
        (config.n_papers / 4).max(8)
    };
    let author_names: Vec<String> = (0..n_authors)
        .map(|_| {
            let mut last = synth_word(&mut rng, 2);
            if let Some(c) = last.get_mut(0..1) {
                c.make_ascii_uppercase();
            }
            let initial = (b'A' + rng.gen_range(0..26u8)) as char;
            format!("{last} {initial}")
        })
        .collect();
    let mut community_authors: Vec<Vec<u32>> = vec![Vec::new(); n_branches];
    for a in 0..n_authors as u32 {
        community_authors[a as usize % n_branches].push(a);
    }

    // Papers.
    let mut papers: Vec<Paper> = Vec::with_capacity(config.n_papers);
    let mut papers_by_topic: HashMap<TermId, Vec<u32>> = HashMap::new();
    let mut papers_by_branch: Vec<Vec<u32>> = vec![Vec::new(); n_branches];
    let mut indegree: Vec<u32> = vec![0; config.n_papers];
    for i in 0..config.n_papers {
        let topic_ids = sample_topics(&mut rng, ontology, &eligible, config.min_topic_level);
        let primary = topic_ids[0];
        let views = choose_signature_subsets(&mut rng, &topic_ids, &topics);

        let title_len = rng.gen_range(config.title_len.0..=config.title_len.1);
        let abstract_len = rng.gen_range(config.abstract_len.0..=config.abstract_len.1);
        let body_len = rng.gen_range(config.body_len.0..=config.body_len.1);
        let depth = ontology
            .level(primary)
            .saturating_sub(config.min_topic_level) as f64;
        let ratio = (config.topic_token_ratio + config.depth_ratio_boost * depth).min(0.72);
        let title = emit_text(
            &mut rng,
            &topics,
            &views,
            &background,
            title_len,
            0.8,
            config.phrase_prob,
            Some(primary),
            false,
        );
        let abstract_text = emit_text(
            &mut rng,
            &topics,
            &views,
            &background,
            abstract_len,
            (ratio + 0.08).min(0.78),
            config.phrase_prob,
            None,
            true,
        );
        let body = emit_text(
            &mut rng,
            &topics,
            &views,
            &background,
            body_len,
            ratio,
            config.phrase_prob,
            None,
            true,
        );
        let index_terms = emit_index_terms(&mut rng, &topics, &views, &background, config);
        let authors = sample_authors(
            &mut rng,
            &community_authors,
            branches[primary.index()],
            n_authors,
            config,
        );
        let references = sample_references(
            &mut rng,
            i as u32,
            &topic_ids,
            &papers_by_topic,
            &papers_by_branch[branches[primary.index()]],
            &indegree,
            config,
        );
        let year = 1990 + ((i * 17) / config.n_papers.max(1)) as u16;

        for &t in &topic_ids {
            papers_by_topic.entry(t).or_default().push(i as u32);
        }
        papers_by_branch[branches[primary.index()]].push(i as u32);
        for &r in &references {
            indegree[r.index()] += 1;
        }
        papers.push(Paper {
            id: PaperId(i as u32),
            title,
            abstract_text,
            body,
            index_terms,
            authors,
            references,
            year,
            true_topics: topic_ids,
        });
    }

    // Evidence sets: earliest papers whose primary topic is the term.
    let mut evidence: HashMap<TermId, Vec<PaperId>> = HashMap::new();
    for p in &papers {
        if let Some(&primary) = p.true_topics.first() {
            let e = evidence.entry(primary).or_default();
            if e.len() < config.evidence_per_term {
                e.push(p.id);
            }
        }
    }

    let term_names: Vec<String> = ontology
        .term_ids()
        .map(|t| ontology.term(t).name.clone())
        .collect();
    Corpus::new(papers, author_names, evidence, &term_names)
}

fn build_topic_model(ontology: &Ontology, term: TermId, signatures: &[Vec<String>]) -> TopicModel {
    let name = &ontology.term(term).name;
    let name_phrase: Vec<String> = name.split_whitespace().map(str::to_string).collect();
    let mut words: Vec<(String, f64)> = Vec::new();
    for w in &name_phrase {
        if w.len() >= 3 && !textproc::stopwords::is_stopword(w) {
            words.push((w.clone(), 3.0));
        }
    }
    // Own signatures live outside this pool: papers draw them from
    // their per-paper subset (vocabulary mismatch).
    // Ancestor signatures via the primary-parent chain, decaying.
    let mut cur = term;
    let mut weight = 1.5;
    for _ in 0..3 {
        let Some(&parent) = ontology.parents(cur).first() else {
            break;
        };
        for s in &signatures[parent.index()] {
            words.push((s.clone(), weight));
        }
        weight *= 0.5;
        cur = parent;
    }
    if words.is_empty() {
        // Degenerate all-stopword name: fall back to the raw name words.
        for w in &name_phrase {
            words.push((w.clone(), 1.0));
        }
    }
    let mut cumulative = Vec::with_capacity(words.len());
    let mut acc = 0.0;
    for (_, w) in &words {
        acc += w;
        cumulative.push(acc);
    }
    TopicModel {
        words: words.into_iter().map(|(w, _)| w).collect(),
        cumulative,
        name_phrase,
        signatures: signatures[term.index()].clone(),
    }
}

fn branch_of_terms(ontology: &Ontology) -> Vec<usize> {
    // Map each term to its level-2 ancestor (itself if level ≤ 2),
    // walking primary parents; then compact branch ids.
    let mut branch_term: Vec<TermId> = Vec::with_capacity(ontology.len());
    for t in ontology.term_ids() {
        let mut cur = t;
        while ontology.level(cur) > 2 {
            match ontology.parents(cur).first() {
                Some(&p) => cur = p,
                None => break,
            }
        }
        branch_term.push(cur);
    }
    let mut ids: HashMap<TermId, usize> = HashMap::new();
    branch_term
        .into_iter()
        .map(|b| {
            let next = ids.len();
            *ids.entry(b).or_insert(next)
        })
        .collect()
}

fn sample_topics<R: Rng>(
    rng: &mut R,
    ontology: &Ontology,
    eligible: &[TermId],
    min_level: u32,
) -> Vec<TermId> {
    let primary = eligible[rng.gen_range(0..eligible.len())];
    let mut topics = vec![primary];
    if rng.gen_bool(0.45) {
        let second = related_term(rng, ontology, primary)
            .filter(|&t| ontology.level(t) >= min_level && rng.gen_bool(0.6))
            .unwrap_or_else(|| eligible[rng.gen_range(0..eligible.len())]);
        if !topics.contains(&second) {
            topics.push(second);
        }
        if rng.gen_bool(0.25) {
            let third = eligible[rng.gen_range(0..eligible.len())];
            if !topics.contains(&third) {
                topics.push(third);
            }
        }
    }
    topics
}

/// Which pool a citation target is drawn from.
#[derive(Clone, Copy)]
enum PoolChoice<'a> {
    /// A specific (topic or branch) pool of earlier papers.
    Pool(&'a [u32]),
    /// Any earlier paper.
    AnyEarlier,
}

/// A topically related term: a random member of the primary's parent's
/// subtree (i.e. a sibling-or-cousin), else a parent.
fn related_term<R: Rng>(rng: &mut R, ontology: &Ontology, term: TermId) -> Option<TermId> {
    let &parent = ontology.parents(term).first()?;
    let family = ontology.descendants(parent);
    if family.is_empty() {
        return Some(parent);
    }
    let pick = family[rng.gen_range(0..family.len())];
    if pick == term {
        Some(parent)
    } else {
        Some(pick)
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_text<R: Rng>(
    rng: &mut R,
    topics: &[TopicModel],
    views: &[PaperTopicView],
    background: &ZipfVocabulary,
    target_len: usize,
    topic_ratio: f64,
    phrase_prob: f64,
    force_phrase_of: Option<TermId>,
    sentences: bool,
) -> String {
    let mut tokens: Vec<&str> = Vec::with_capacity(target_len + 8);
    if let Some(t) = force_phrase_of {
        tokens.extend(topics[t.index()].name_phrase.iter().map(String::as_str));
    }
    while tokens.len() < target_len {
        if rng.gen_bool(topic_ratio) {
            // Primary topic carries 60% of topical mass.
            let view = if views.len() == 1 || rng.gen_bool(0.6) {
                &views[0]
            } else {
                &views[1 + rng.gen_range(0..views.len() - 1)]
            };
            let model = &topics[view.topic.index()];
            if rng.gen_bool(phrase_prob) {
                tokens.extend(model.name_phrase.iter().map(String::as_str));
            } else if !view.sig_subset.is_empty() && rng.gen_bool(0.45) {
                // Signature draw, restricted to this paper's subset —
                // the vocabulary-mismatch mechanism.
                let i = view.sig_subset[rng.gen_range(0..view.sig_subset.len())];
                tokens.push(&model.signatures[i]);
            } else {
                tokens.push(model.sample_nonsig(rng));
            }
        } else {
            tokens.push(background.sample(rng));
        }
    }
    if sentences {
        join_sentences(rng, &tokens)
    } else {
        tokens.join(" ")
    }
}

fn join_sentences<R: Rng>(rng: &mut R, tokens: &[&str]) -> String {
    let mut out = String::with_capacity(tokens.len() * 8);
    let mut since_period = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if i > 0 {
            if since_period >= 8 && rng.gen_bool(0.18) {
                out.push_str(". ");
                since_period = 0;
            } else {
                out.push(' ');
            }
        }
        out.push_str(tok);
        since_period += 1;
    }
    out.push('.');
    out
}

fn emit_index_terms<R: Rng>(
    rng: &mut R,
    topics: &[TopicModel],
    views: &[PaperTopicView],
    background: &ZipfVocabulary,
    config: &CorpusConfig,
) -> Vec<String> {
    let n = rng.gen_range(config.n_index_terms.0..=config.n_index_terms.1);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let view = &views[i % views.len()];
        let model = &topics[view.topic.index()];
        let entry = match i % 3 {
            0 => model.name_phrase.join(" "),
            1 if !view.sig_subset.is_empty() => {
                let j = view.sig_subset[rng.gen_range(0..view.sig_subset.len())];
                model.signatures[j].clone()
            }
            _ => {
                if rng.gen_bool(0.5) {
                    model.sample_nonsig(rng).to_string()
                } else {
                    background.sample(rng).to_string()
                }
            }
        };
        out.push(entry);
    }
    out
}

fn sample_authors<R: Rng>(
    rng: &mut R,
    community_authors: &[Vec<u32>],
    branch: usize,
    n_authors: usize,
    config: &CorpusConfig,
) -> Vec<AuthorId> {
    let k = rng.gen_range(config.authors_per_paper.0..=config.authors_per_paper.1);
    let community = &community_authors[branch.min(community_authors.len() - 1)];
    let mut chosen: Vec<AuthorId> = Vec::with_capacity(k);
    let mut seen = HashSet::with_capacity(k);
    for _ in 0..k * 3 {
        if chosen.len() >= k {
            break;
        }
        let a = if !community.is_empty() && rng.gen_bool(config.author_community_locality) {
            community[rng.gen_range(0..community.len())]
        } else {
            rng.gen_range(0..n_authors as u32)
        };
        if seen.insert(a) {
            chosen.push(AuthorId(a));
        }
    }
    chosen
}

#[allow(clippy::too_many_arguments)]
fn sample_references<R: Rng>(
    rng: &mut R,
    paper_index: u32,
    paper_topics: &[TermId],
    papers_by_topic: &HashMap<TermId, Vec<u32>>,
    branch_pool: &[u32],
    indegree: &[u32],
    config: &CorpusConfig,
) -> Vec<PaperId> {
    if paper_index == 0 {
        return Vec::new();
    }
    let mut n_refs = 0usize;
    {
        // Geometric with the configured mean.
        let p = config.mean_references / (1.0 + config.mean_references);
        while n_refs < 80 && rng.gen_bool(p) {
            n_refs += 1;
        }
    }
    let mut refs: HashSet<u32> = HashSet::with_capacity(n_refs);
    // Tournament-style preferential attachment: sample a few candidates
    // from the pool and cite the most-cited one.
    let pick = |rng: &mut R, pool_choice: PoolChoice<'_>| -> u32 {
        let uniform = |rng: &mut R| match pool_choice {
            PoolChoice::Pool(pool) => pool[rng.gen_range(0..pool.len())],
            PoolChoice::AnyEarlier => rng.gen_range(0..paper_index),
        };
        if rng.gen_bool(config.preferential_attachment) {
            let mut best = uniform(rng);
            for _ in 0..3 {
                let cand = uniform(rng);
                if indegree[cand as usize] > indegree[best as usize] {
                    best = cand;
                }
            }
            best
        } else {
            uniform(rng)
        }
    };
    for _ in 0..n_refs {
        let target = if rng.gen_bool(config.citation_locality) {
            let t = paper_topics[rng.gen_range(0..paper_topics.len())];
            match papers_by_topic.get(&t) {
                Some(pool) if !pool.is_empty() => pick(rng, PoolChoice::Pool(pool)),
                // No earlier paper on this exact topic yet: stay in the
                // same research community (level-2 branch) if possible.
                _ if !branch_pool.is_empty() => pick(rng, PoolChoice::Pool(branch_pool)),
                _ => pick(rng, PoolChoice::AnyEarlier),
            }
        } else {
            pick(rng, PoolChoice::AnyEarlier)
        };
        if target != paper_index {
            refs.insert(target);
        }
    }
    let mut out: Vec<PaperId> = refs.into_iter().map(PaperId).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::{generate_ontology, GeneratorConfig};

    fn small_setup() -> (Ontology, Corpus) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 120,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 200,
                seed: 9,
                body_len: (60, 100),
                abstract_len: (30, 50),
                ..Default::default()
            },
        );
        (onto, corpus)
    }

    #[test]
    fn generates_requested_papers() {
        let (_, c) = small_setup();
        assert_eq!(c.len(), 200);
    }

    #[test]
    fn is_deterministic() {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 60,
            seed: 3,
            ..Default::default()
        });
        let cfg = CorpusConfig {
            n_papers: 50,
            seed: 4,
            body_len: (40, 60),
            abstract_len: (20, 30),
            ..Default::default()
        };
        let a = generate_corpus(&onto, &cfg);
        let b = generate_corpus(&onto, &cfg);
        for (pa, pb) in a.papers().iter().zip(b.papers()) {
            assert_eq!(pa.title, pb.title);
            assert_eq!(pa.references, pb.references);
            assert_eq!(pa.authors, pb.authors);
        }
    }

    #[test]
    fn titles_contain_primary_topic_phrase() {
        let (onto, c) = small_setup();
        for p in c.papers().iter().take(30) {
            let primary = p.true_topics[0];
            let name = &onto.term(primary).name;
            assert!(
                p.title.starts_with(name.as_str()),
                "title {:?} should start with topic {:?}",
                p.title,
                name
            );
        }
    }

    #[test]
    fn references_point_backwards_only() {
        let (_, c) = small_setup();
        for p in c.papers() {
            for &r in &p.references {
                assert!(r.0 < p.id.0, "paper {} cites future paper {}", p.id.0, r.0);
            }
        }
    }

    #[test]
    fn topical_citations_dominate_random_ones() {
        let (onto, c) = small_setup();
        let branch = |t: TermId| {
            let mut cur = t;
            while onto.level(cur) > 2 {
                match onto.parents(cur).first() {
                    Some(&p) => cur = p,
                    None => break,
                }
            }
            cur
        };
        let (mut related, mut total) = (0usize, 0usize);
        for p in c.papers() {
            for &r in &p.references {
                total += 1;
                let cited = c.paper(r);
                let shares_topic = p.true_topics.iter().any(|t| cited.true_topics.contains(t));
                let shares_branch = branch(p.true_topics[0]) == branch(cited.true_topics[0]);
                if shares_topic || shares_branch {
                    related += 1;
                }
            }
        }
        assert!(total > 100, "expected a reasonable number of citations");
        let frac = related as f64 / total as f64;
        assert!(frac > 0.3, "topical citation fraction too low: {frac:.2}");
        assert!(
            frac < 0.98,
            "need cross-topic noise for sparse in-context graphs: {frac:.2}"
        );
    }

    #[test]
    fn evidence_papers_have_matching_primary_topic() {
        let (onto, c) = small_setup();
        let mut n_terms_with_evidence = 0;
        for t in onto.term_ids() {
            let ev = c.evidence_for(t);
            if !ev.is_empty() {
                n_terms_with_evidence += 1;
            }
            for &pid in ev {
                assert_eq!(c.paper(pid).true_topics[0], t);
            }
        }
        assert!(n_terms_with_evidence > 10);
    }

    #[test]
    fn authors_are_in_range_and_distinct_per_paper() {
        let (_, c) = small_setup();
        for p in c.papers() {
            let set: HashSet<AuthorId> = p.authors.iter().copied().collect();
            assert_eq!(set.len(), p.authors.len(), "duplicate authors");
            for a in &p.authors {
                assert!(a.index() < c.n_authors());
            }
        }
    }

    #[test]
    fn coauthors_cluster_by_community() {
        let (_, c) = small_setup();
        // Two papers sharing a primary-topic branch should share authors
        // far more often than random pairs; sanity-check author reuse.
        let by_author = c.papers_by_author();
        let multi = by_author.values().filter(|v| v.len() > 1).count();
        assert!(multi > 0, "some authors should write multiple papers");
    }

    #[test]
    fn signature_words_survive_analysis() {
        let (_, c) = small_setup();
        // Signature words end in a digit so stemming leaves them; they
        // must appear in the analyzed body of their papers.
        let p = &c.papers()[10];
        let analyzed = c.analyzed(p.id);
        assert!(!analyzed.body.is_empty());
        let has_digit_token = analyzed.body.iter().any(|&t| {
            c.vocab()
                .term(t)
                .is_some_and(|s| s.ends_with(|ch: char| ch.is_ascii_digit()))
        });
        assert!(has_digit_token, "expected signature tokens in body");
    }

    #[test]
    fn year_is_monotonic_in_id() {
        let (_, c) = small_setup();
        for w in c.papers().windows(2) {
            assert!(w[0].year <= w[1].year);
        }
    }

    #[test]
    fn topics_are_at_or_below_min_level() {
        let (onto, c) = small_setup();
        for p in c.papers() {
            for &t in &p.true_topics {
                assert!(onto.level(t) >= 2);
            }
        }
    }
}
