//! Deterministic pseudo-word synthesis and Zipf-distributed background
//! vocabulary.
//!
//! The synthetic corpus needs two kinds of non-English words:
//!
//! * **background words** — generic filler tokens whose frequencies
//!   follow a Zipf law, like real text (this is what makes TF-IDF
//!   weighting behave realistically),
//! * **signature words** — rare, topic-specific tokens (think gene
//!   symbols like "brca2") that make each ontology term's papers
//!   textually identifiable.
//!
//! Both are built from pronounceable consonant-vowel syllables so
//! generated text looks plausible and tokenizes cleanly.

use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gl", "h", "k", "l", "m", "n", "p", "pr", "r",
    "s", "st", "t", "tr", "v", "z", "th", "ph", "ch",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ae", "io", "ou"];
const CODAS: &[&str] = &["", "n", "m", "r", "s", "x", "l", "t", "d", "k"];

/// Generate one pronounceable pseudo-word with `syllables` syllables.
pub fn synth_word<R: Rng>(rng: &mut R, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables.max(1) {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
        if rng.gen_bool(0.4) {
            w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
    }
    w
}

/// Generate a gene-symbol-like signature word, e.g. "brax4".
///
/// Always ends in a digit: digit-bearing tokens bypass Porter stemming,
/// so a signature word reads back from generated text exactly as
/// written — the property topic matching relies on.
pub fn synth_signature<R: Rng>(rng: &mut R) -> String {
    let mut w = synth_word(rng, 2);
    w.truncate(5);
    w.push(char::from_digit(rng.gen_range(1..10), 10).expect("digit"));
    w
}

/// A fixed vocabulary with Zipf-distributed sampling.
#[derive(Debug, Clone)]
pub struct ZipfVocabulary {
    words: Vec<String>,
    /// Cumulative (unnormalized) weights for binary-search sampling.
    cumulative: Vec<f64>,
}

impl ZipfVocabulary {
    /// Build `size` distinct pseudo-words with Zipf(`exponent`) weights
    /// (rank 1 is most frequent).
    pub fn generate<R: Rng>(rng: &mut R, size: usize, exponent: f64) -> Self {
        let mut words = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::with_capacity(size);
        while words.len() < size {
            let syll = 2 + (words.len() % 3); // mix of 2-4 syllable words
            let w = synth_word(rng, syll);
            if w.len() >= 3 && seen.insert(w.clone()) {
                words.push(w);
            }
        }
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0;
        for rank in 1..=size {
            acc += 1.0 / (rank as f64).powf(exponent);
            cumulative.push(acc);
        }
        Self { words, cumulative }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Sample one word according to the Zipf weights.
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R) -> &'a str {
        let total = *self.cumulative.last().expect("non-empty vocabulary");
        let x = rng.gen_range(0.0..total);
        let i = self.cumulative.partition_point(|&c| c < x);
        &self.words[i.min(self.words.len() - 1)]
    }

    /// The word at `rank` (0 = most frequent).
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn synth_words_are_lowercase_alpha() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let w = synth_word(&mut rng, 3);
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 3);
        }
    }

    #[test]
    fn signatures_look_like_gene_symbols() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = synth_signature(&mut rng);
            assert!(s.len() >= 3 && s.len() <= 6, "{s}");
            assert!(s.ends_with(|c: char| c.is_ascii_digit()), "{s}");
            assert!(s
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
        }
    }

    #[test]
    fn vocabulary_has_requested_distinct_size() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = ZipfVocabulary::generate(&mut rng, 500, 1.1);
        assert_eq!(v.len(), 500);
        let set: std::collections::HashSet<&str> = (0..500).map(|i| v.word(i)).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn sampling_is_zipf_skewed() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v = ZipfVocabulary::generate(&mut rng, 200, 1.1);
        let mut head = 0usize;
        let n = 20_000;
        let top: std::collections::HashSet<String> =
            (0..20).map(|i| v.word(i).to_string()).collect();
        for _ in 0..n {
            if top.contains(v.sample(&mut rng)) {
                head += 1;
            }
        }
        // Top-10% of ranks should carry much more than 10% of mass.
        assert!(
            head as f64 / n as f64 > 0.3,
            "zipf head mass too small: {head}/{n}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ZipfVocabulary::generate(&mut SmallRng::seed_from_u64(9), 50, 1.0);
        let b = ZipfVocabulary::generate(&mut SmallRng::seed_from_u64(9), 50, 1.0);
        for i in 0..50 {
            assert_eq!(a.word(i), b.word(i));
        }
    }
}
