//! Descriptive corpus statistics, for diagnostics and the experiment
//! harness's provenance output.

use crate::store::Corpus;
use serde::Serialize;

/// Summary statistics of a corpus.
#[derive(Debug, Clone, Serialize)]
pub struct CorpusStats {
    /// Number of papers.
    pub n_papers: usize,
    /// Number of distinct authors.
    pub n_authors: usize,
    /// Total citation edges.
    pub n_citations: usize,
    /// Mean reference-list length.
    pub mean_references: f64,
    /// Mean authors per paper.
    pub mean_authors: f64,
    /// Distinct vocabulary size after analysis.
    pub vocab_size: usize,
    /// Mean analyzed body length in tokens.
    pub mean_body_tokens: f64,
    /// Number of ontology terms with at least one evidence paper.
    pub terms_with_evidence: usize,
}

impl CorpusStats {
    /// Compute statistics over `corpus`.
    pub fn compute(corpus: &Corpus) -> Self {
        let n = corpus.len();
        let n_citations: usize = corpus.papers().iter().map(|p| p.references.len()).sum();
        let total_authors: usize = corpus.papers().iter().map(|p| p.authors.len()).sum();
        let total_body: usize = corpus
            .paper_ids()
            .map(|id| corpus.analyzed(id).body.len())
            .sum();
        Self {
            n_papers: n,
            n_authors: corpus.n_authors(),
            n_citations,
            mean_references: ratio(n_citations, n),
            mean_authors: ratio(total_authors, n),
            vocab_size: corpus.vocab().len(),
            mean_body_tokens: ratio(total_body, n),
            terms_with_evidence: corpus.terms_with_evidence().count(),
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    #[test]
    fn stats_are_plausible() {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 100,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 9,
                body_len: (40, 80),
                abstract_len: (20, 40),
                ..Default::default()
            },
        );
        let s = CorpusStats::compute(&corpus);
        assert_eq!(s.n_papers, 150);
        assert!(s.mean_references > 2.0, "{}", s.mean_references);
        assert!(s.mean_authors >= 2.0);
        assert!(s.vocab_size > 500);
        assert!(s.mean_body_tokens > 20.0);
        assert!(s.terms_with_evidence > 5);
    }

    #[test]
    fn empty_corpus_stats_are_zero() {
        let c = Corpus::new(vec![], vec![], Default::default(), &[]);
        let s = CorpusStats::compute(&c);
        assert_eq!(s.n_papers, 0);
        assert_eq!(s.mean_references, 0.0);
    }
}
