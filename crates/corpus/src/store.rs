//! The corpus container.
//!
//! Holds the paper records, author names, per-ontology-term annotation
//! evidence sets (the "training papers" of §3.3), and — because every
//! downstream component works on interned token streams — a shared
//! [`Vocabulary`] plus the cached analyzed form of every paper section.

use crate::paper::{AuthorId, Paper, PaperId, Section};
use ontology::TermId as OntTermId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use textproc::{analyze, TermId, Vocabulary};

/// Stable on-disk form of a corpus (papers, authors, evidence; the
/// analysis caches are rebuilt on load).
#[derive(Debug, Serialize, Deserialize)]
pub struct CorpusFile {
    /// All paper records.
    pub papers: Vec<Paper>,
    /// Author display names, by id.
    pub author_names: Vec<String>,
    /// `(ontology term, evidence papers)` pairs, sorted by term.
    pub evidence: Vec<(u32, Vec<u32>)>,
    /// Extra texts (e.g. ontology term names) interned at build time.
    pub extra_texts: Vec<String>,
}

/// A paper's sections as interned, stemmed, stopword-free token streams.
#[derive(Debug, Clone, Default)]
pub struct AnalyzedPaper {
    /// Title tokens.
    pub title: Vec<TermId>,
    /// Abstract tokens.
    pub abstract_text: Vec<TermId>,
    /// Body tokens.
    pub body: Vec<TermId>,
    /// Index-term tokens (phrases flattened).
    pub index_terms: Vec<TermId>,
}

impl AnalyzedPaper {
    /// Token stream of one section.
    pub fn section(&self, section: Section) -> &[TermId] {
        match section {
            Section::Title => &self.title,
            Section::Abstract => &self.abstract_text,
            Section::Body => &self.body,
            Section::IndexTerms => &self.index_terms,
        }
    }

    /// All sections concatenated (allocates).
    pub fn concat(&self) -> Vec<TermId> {
        let mut out = Vec::with_capacity(
            self.title.len() + self.abstract_text.len() + self.body.len() + self.index_terms.len(),
        );
        out.extend_from_slice(&self.title);
        out.extend_from_slice(&self.abstract_text);
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&self.index_terms);
        out
    }
}

/// An immutable-after-build collection of papers with analysis caches.
#[derive(Debug, Clone)]
pub struct Corpus {
    papers: Vec<Paper>,
    author_names: Vec<String>,
    evidence: HashMap<OntTermId, Vec<PaperId>>,
    vocab: Vocabulary,
    analyzed: Vec<AnalyzedPaper>,
}

impl Corpus {
    /// Build a corpus, analyzing every paper section once. `extra_texts`
    /// (e.g. ontology term names) are interned so later lookups of their
    /// words succeed even if no paper uses them.
    pub fn new(
        papers: Vec<Paper>,
        author_names: Vec<String>,
        evidence: HashMap<OntTermId, Vec<PaperId>>,
        extra_texts: &[String],
    ) -> Self {
        let mut vocab = Vocabulary::new();
        for text in extra_texts {
            for tok in analyze(text) {
                vocab.intern(&tok);
            }
        }
        let analyzed = papers
            .iter()
            .map(|p| AnalyzedPaper {
                title: intern(&mut vocab, &p.title),
                abstract_text: intern(&mut vocab, &p.abstract_text),
                body: intern(&mut vocab, &p.body),
                index_terms: intern(&mut vocab, &p.index_terms.join(" ")),
            })
            .collect();
        Self {
            papers,
            author_names,
            evidence,
            vocab,
            analyzed,
        }
    }

    /// Number of papers.
    pub fn len(&self) -> usize {
        self.papers.len()
    }

    /// True if the corpus holds no papers.
    pub fn is_empty(&self) -> bool {
        self.papers.is_empty()
    }

    /// All papers in id order.
    pub fn papers(&self) -> &[Paper] {
        &self.papers
    }

    /// The paper with `id`.
    pub fn paper(&self, id: PaperId) -> &Paper {
        &self.papers[id.index()]
    }

    /// All paper ids.
    pub fn paper_ids(&self) -> impl Iterator<Item = PaperId> + '_ {
        (0..self.papers.len() as u32).map(PaperId)
    }

    /// The analyzed (interned/stemmed) form of the paper with `id`.
    pub fn analyzed(&self, id: PaperId) -> &AnalyzedPaper {
        &self.analyzed[id.index()]
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Analyze arbitrary text against the corpus vocabulary, dropping
    /// tokens the corpus has never seen (they cannot match anything).
    pub fn analyze_known(&self, text: &str) -> Vec<TermId> {
        analyze(text)
            .iter()
            .filter_map(|t| self.vocab.get(t))
            .collect()
    }

    /// Number of distinct authors.
    pub fn n_authors(&self) -> usize {
        self.author_names.len()
    }

    /// Display name of an author.
    pub fn author_name(&self, id: AuthorId) -> &str {
        &self.author_names[id.index()]
    }

    /// Citation edge list `(citing, cited)` as dense u32 pairs, suitable
    /// for `citegraph::CitationGraph::from_edges`.
    pub fn citation_edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for p in &self.papers {
            for &r in &p.references {
                edges.push((p.id.0, r.0));
            }
        }
        edges
    }

    /// Annotation-evidence (training) papers of an ontology term; empty
    /// slice if the term has none (common — the paper notes most GO
    /// terms lacked direct annotations in their 72k subset).
    pub fn evidence_for(&self, term: OntTermId) -> &[PaperId] {
        self.evidence.get(&term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Terms that have at least one evidence paper.
    pub fn terms_with_evidence(&self) -> impl Iterator<Item = OntTermId> + '_ {
        self.evidence
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&t, _)| t)
    }

    /// Serialize to JSON. Analysis caches are not stored; [`Corpus::from_json`]
    /// rebuilds them (deterministically — analysis is a pure function).
    pub fn to_json(&self, extra_texts: &[String]) -> String {
        let mut evidence: Vec<(u32, Vec<u32>)> = self
            .evidence
            .iter()
            .map(|(t, ps)| (t.0, ps.iter().map(|p| p.0).collect()))
            .collect();
        evidence.sort_unstable_by_key(|&(t, _)| t);
        let file = CorpusFile {
            papers: self.papers.clone(),
            author_names: self.author_names.clone(),
            evidence,
            extra_texts: extra_texts.to_vec(),
        };
        serde_json::to_string(&file).expect("corpus serializes")
    }

    /// Load a corpus serialized with [`Corpus::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let file: CorpusFile = serde_json::from_str(json)?;
        let evidence: HashMap<OntTermId, Vec<PaperId>> = file
            .evidence
            .into_iter()
            .map(|(t, ps)| (OntTermId(t), ps.into_iter().map(PaperId).collect()))
            .collect();
        Ok(Corpus::new(
            file.papers,
            file.author_names,
            evidence,
            &file.extra_texts,
        ))
    }

    /// Papers listing `author` among their authors.
    pub fn papers_by_author(&self) -> HashMap<AuthorId, Vec<PaperId>> {
        let mut map: HashMap<AuthorId, Vec<PaperId>> = HashMap::new();
        for p in &self.papers {
            for &a in &p.authors {
                map.entry(a).or_default().push(p.id);
            }
        }
        map
    }
}

fn intern(vocab: &mut Vocabulary, text: &str) -> Vec<TermId> {
    analyze(text).iter().map(|t| vocab.intern(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        let p = |id: u32, title: &str, refs: Vec<u32>, authors: Vec<u32>| Paper {
            id: PaperId(id),
            title: title.to_string(),
            abstract_text: format!("{title} abstract text"),
            body: format!("{title} body content words"),
            index_terms: vec![title.split(' ').next().unwrap().to_string()],
            authors: authors.into_iter().map(AuthorId).collect(),
            references: refs.into_iter().map(PaperId).collect(),
            year: 2000,
            true_topics: vec![],
        };
        let mut evidence = HashMap::new();
        evidence.insert(ontology::TermId(0), vec![PaperId(0), PaperId(1)]);
        Corpus::new(
            vec![
                p(0, "histone binding", vec![], vec![0, 1]),
                p(1, "kinase signaling", vec![0], vec![1]),
                p(2, "membrane transport", vec![0, 1], vec![2]),
            ],
            vec!["Ada A".into(), "Bob B".into(), "Cyd C".into()],
            evidence,
            &["chromatin assembly".to_string()],
        )
    }

    #[test]
    fn analyzed_sections_are_interned() {
        let c = tiny();
        let a = c.analyzed(PaperId(0));
        assert!(!a.title.is_empty());
        assert!(!a.body.is_empty());
        // Same word in title and body shares the id.
        let histone = c.vocab().get("histon").expect("stemmed histone");
        assert!(a.title.contains(&histone));
        assert!(a.body.contains(&histone));
    }

    #[test]
    fn extra_texts_are_interned() {
        let c = tiny();
        assert!(c.vocab().get("chromatin").is_some());
        assert!(c.vocab().get("assembl").is_some());
    }

    #[test]
    fn analyze_known_drops_unknown_tokens() {
        let c = tiny();
        let toks = c.analyze_known("histone zzzzz");
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn citation_edges_round_trip() {
        let c = tiny();
        let mut e = c.citation_edges();
        e.sort_unstable();
        assert_eq!(e, vec![(1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn evidence_lookup() {
        let c = tiny();
        assert_eq!(
            c.evidence_for(ontology::TermId(0)),
            &[PaperId(0), PaperId(1)]
        );
        assert!(c.evidence_for(ontology::TermId(9)).is_empty());
        assert_eq!(c.terms_with_evidence().count(), 1);
    }

    #[test]
    fn papers_by_author_inverts_bylines() {
        let c = tiny();
        let by = c.papers_by_author();
        assert_eq!(by[&AuthorId(1)], vec![PaperId(0), PaperId(1)]);
        assert_eq!(by[&AuthorId(2)], vec![PaperId(2)]);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let c = tiny();
        let json = c.to_json(&["chromatin assembly".to_string()]);
        let loaded = Corpus::from_json(&json).unwrap();
        assert_eq!(loaded.len(), c.len());
        for (a, b) in c.papers().iter().zip(loaded.papers()) {
            assert_eq!(a.title, b.title);
            assert_eq!(a.references, b.references);
            assert_eq!(a.authors, b.authors);
        }
        assert_eq!(loaded.n_authors(), c.n_authors());
        assert_eq!(
            loaded.evidence_for(ontology::TermId(0)),
            c.evidence_for(ontology::TermId(0))
        );
        // Analysis caches rebuilt identically (same vocabulary walk).
        for id in c.paper_ids() {
            assert_eq!(c.analyzed(id).title, loaded.analyzed(id).title);
            assert_eq!(c.analyzed(id).body, loaded.analyzed(id).body);
        }
        assert!(loaded.vocab().get("chromatin").is_some());
    }

    #[test]
    fn malformed_corpus_json_errors() {
        assert!(Corpus::from_json("not json").is_err());
    }

    #[test]
    fn concat_combines_sections() {
        let c = tiny();
        let a = c.analyzed(PaperId(1));
        let all = a.concat();
        assert_eq!(
            all.len(),
            a.title.len() + a.abstract_text.len() + a.body.len() + a.index_terms.len()
        );
    }
}
