//! Paper-corpus substrate: the stand-in for the paper's 72,027 full-text
//! PubMed genomics papers (see DESIGN.md for the substitution argument).
//!
//! * [`paper`] — the paper record: title / abstract / body / index
//!   terms sections, authors, references, plus generator ground truth,
//! * [`words`] — deterministic pseudo-word synthesis and Zipf sampling
//!   for background vocabulary,
//! * [`generate`] — the synthetic corpus generator: per-ontology-term
//!   topic language models, author communities per ontology branch,
//!   citation wiring with configurable topical locality,
//! * [`store`] — the [`store::Corpus`] container: papers, authors,
//!   annotation-evidence sets, cached analyzed token streams,
//! * [`medline`] — MEDLINE-style flat-file import/export (the PubMed
//!   exchange format, for loading real collections),
//! * [`queries`] — evaluation query synthesis (the stand-in for the
//!   paper's ~120 external-classification search terms),
//! * [`stats`] — corpus descriptive statistics for diagnostics.

pub mod generate;
pub mod medline;
pub mod paper;
pub mod queries;
pub mod stats;
pub mod store;
pub mod words;

pub use generate::{generate_corpus, CorpusConfig};
pub use paper::{AuthorId, Paper, PaperId, Section};
pub use store::Corpus;
