//! Evaluation-query synthesis.
//!
//! The paper evaluated precision with ~120 search terms taken from
//! external life-science classification systems (e.g. TIGR roles) that
//! had been manually mapped to GO terms — i.e. queries that are *about*
//! a context without literally being its name. This module synthesizes
//! the equivalent: for a sampled ontology term, a query built from a
//! subset of the term's name words plus topic signature words drawn
//! from the term's evidence papers, with the generating term recorded
//! as the ground-truth mapping.

use crate::store::Corpus;
use ontology::{Ontology, TermId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One synthesized evaluation query.
#[derive(Debug, Clone)]
pub struct EvalQuery {
    /// The raw query text a user would type.
    pub text: String,
    /// The ontology term the external classification maps this query to.
    pub mapped_term: TermId,
}

/// Configuration for query synthesis.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Number of queries to generate.
    pub n_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Only terms at this level or deeper are query targets (roots are
    /// not meaningful search terms).
    pub min_level: u32,
    /// Only terms with at least this many evidence papers (so the
    /// ground truth is well defined).
    pub min_evidence: usize,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            n_queries: 120,
            seed: 2007,
            min_level: 3,
            min_evidence: 1,
        }
    }
}

/// Synthesize evaluation queries over a generated corpus.
///
/// Returns fewer than `n_queries` queries only if the ontology has
/// fewer eligible terms than requested (each term is used at most once).
pub fn generate_queries(
    ontology: &Ontology,
    corpus: &Corpus,
    config: &QueryConfig,
) -> Vec<EvalQuery> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut eligible: Vec<TermId> = ontology
        .term_ids()
        .filter(|&t| {
            ontology.level(t) >= config.min_level
                && corpus.evidence_for(t).len() >= config.min_evidence
        })
        .collect();
    // Deterministic shuffle.
    for i in (1..eligible.len()).rev() {
        let j = rng.gen_range(0..=i);
        eligible.swap(i, j);
    }
    eligible.truncate(config.n_queries);

    eligible
        .into_iter()
        .map(|term| {
            let text = paraphrase_term(&mut rng, ontology, corpus, term);
            EvalQuery {
                text,
                mapped_term: term,
            }
        })
        .collect()
}

/// Build a query "about" `term`: a sample of its name's content words
/// (never all of them — external classification labels paraphrase, not
/// quote) plus, usually, one signature word found in its evidence
/// papers' index terms.
fn paraphrase_term<R: Rng>(
    rng: &mut R,
    ontology: &Ontology,
    corpus: &Corpus,
    term: TermId,
) -> String {
    let name = &ontology.term(term).name;
    let content: Vec<&str> = name
        .split_whitespace()
        .filter(|w| w.len() >= 3 && !textproc::stopwords::is_stopword(w))
        .collect();
    let mut words: Vec<String> = Vec::new();
    if !content.is_empty() {
        // Keep roughly 2/3 of the content words, at least one.
        let keep = ((content.len() * 2) / 3).max(1);
        let start = rng.gen_range(0..=(content.len() - keep));
        for w in &content[start..start + keep] {
            words.push((*w).to_string());
        }
    }
    // Add a signature-like token from an evidence paper's index terms.
    let evidence = corpus.evidence_for(term);
    if !evidence.is_empty() && rng.gen_bool(0.7) {
        let p = corpus.paper(evidence[rng.gen_range(0..evidence.len())]);
        let sigs: Vec<&String> = p
            .index_terms
            .iter()
            .filter(|t| !t.contains(' ') && t.ends_with(|c: char| c.is_ascii_digit()))
            .collect();
        if !sigs.is_empty() {
            words.push(sigs[rng.gen_range(0..sigs.len())].clone());
        }
    }
    if words.is_empty() {
        words.push(name.clone());
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn setup() -> (Ontology, Corpus) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 150,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 300,
                seed: 9,
                body_len: (40, 80),
                abstract_len: (20, 40),
                ..Default::default()
            },
        );
        (onto, corpus)
    }

    #[test]
    fn generates_queries_with_valid_targets() {
        let (onto, corpus) = setup();
        let qs = generate_queries(&onto, &corpus, &QueryConfig::default());
        assert!(qs.len() >= 20, "got {} queries", qs.len());
        for q in &qs {
            assert!(!q.text.is_empty());
            assert!(onto.level(q.mapped_term) >= 3);
            assert!(!corpus.evidence_for(q.mapped_term).is_empty());
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let (onto, corpus) = setup();
        let a = generate_queries(&onto, &corpus, &QueryConfig::default());
        let b = generate_queries(&onto, &corpus, &QueryConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.mapped_term, y.mapped_term);
        }
    }

    #[test]
    fn queries_target_distinct_terms() {
        let (onto, corpus) = setup();
        let qs = generate_queries(&onto, &corpus, &QueryConfig::default());
        let set: std::collections::HashSet<TermId> = qs.iter().map(|q| q.mapped_term).collect();
        assert_eq!(set.len(), qs.len());
    }

    #[test]
    fn query_words_relate_to_term_name() {
        let (onto, corpus) = setup();
        let qs = generate_queries(&onto, &corpus, &QueryConfig::default());
        let mut with_name_word = 0;
        for q in &qs {
            let name = &onto.term(q.mapped_term).name;
            if q.text.split(' ').any(|w| name.contains(w)) {
                with_name_word += 1;
            }
        }
        assert!(
            with_name_word * 10 >= qs.len() * 9,
            "most queries should share words with their term"
        );
    }
}
