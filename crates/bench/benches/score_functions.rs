//! Criterion benchmarks of the paper's three prestige score functions
//! and the end-to-end pipeline stages, on a small shared testbed.

use context_search::{ContextSearchEngine, EngineConfig, ScoreFunction};
use corpus::{generate_corpus, CorpusConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use ontology::{generate_ontology, GeneratorConfig};
use std::hint::black_box;

fn build_engine() -> ContextSearchEngine {
    let onto = generate_ontology(&GeneratorConfig {
        n_terms: 150,
        seed: 3,
        ..Default::default()
    });
    let corp = generate_corpus(
        &onto,
        &CorpusConfig {
            n_papers: 800,
            seed: 5,
            body_len: (80, 140),
            abstract_len: (30, 60),
            ..Default::default()
        },
    );
    ContextSearchEngine::build(onto, corp, EngineConfig::default())
}

fn bench_pipeline(c: &mut Criterion) {
    let engine = build_engine();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("text_context_sets", |b| {
        b.iter(|| black_box(engine.text_context_sets()))
    });
    group.bench_function("pattern_context_sets", |b| {
        // Patterns are cached after the first call; this measures the
        // assignment sweep itself.
        b.iter(|| black_box(engine.pattern_context_sets()))
    });

    let tsets = engine.text_context_sets();
    let psets = engine.pattern_context_sets();
    group.bench_function("prestige/citation", |b| {
        b.iter(|| black_box(engine.prestige(&psets, ScoreFunction::Citation)))
    });
    group.bench_function("prestige/text", |b| {
        b.iter(|| black_box(engine.prestige(&tsets, ScoreFunction::Text)))
    });
    group.bench_function("prestige/pattern", |b| {
        b.iter(|| black_box(engine.prestige(&psets, ScoreFunction::Pattern)))
    });
    group.finish();

    let prestige = engine.prestige(&psets, ScoreFunction::Pattern);
    let term = engine
        .ontology()
        .term_ids()
        .find(|&t| engine.ontology().level(t) == 3)
        .expect("level-3 term");
    let query = engine.ontology().term(term).name.clone();
    let mut group = c.benchmark_group("query");
    group.bench_function("context_search", |b| {
        b.iter(|| black_box(engine.search(black_box(&query), &psets, &prestige, 20)))
    });
    group.bench_function("keyword_baseline", |b| {
        b.iter(|| black_box(engine.keyword_search(black_box(&query), 0.0)))
    });
    group.bench_function("ac_answer_set", |b| {
        b.iter(|| black_box(engine.ac_answer_set(black_box(&query))))
    });
    group.finish();
}

/// The search hot path with telemetry off vs on. The disabled cost is
/// one relaxed atomic load per instrumentation site; enabled adds span
/// bookkeeping. Compare the two medians — enabled must stay within a
/// few percent of disabled.
fn bench_obs_overhead(c: &mut Criterion) {
    let engine = build_engine();
    let psets = engine.pattern_context_sets();
    let prestige = engine.prestige(&psets, ScoreFunction::Pattern);
    let term = engine
        .ontology()
        .term_ids()
        .find(|&t| engine.ontology().level(t) == 3)
        .expect("level-3 term");
    let query = engine.ontology().term(term).name.clone();

    let mut group = c.benchmark_group("obs_overhead");
    obs::disable();
    group.bench_function("search/telemetry_off", |b| {
        b.iter(|| black_box(engine.search(black_box(&query), &psets, &prestige, 20)))
    });
    obs::enable();
    group.bench_function("search/telemetry_on", |b| {
        b.iter(|| black_box(engine.search(black_box(&query), &psets, &prestige, 20)))
    });
    obs::disable();
    obs::reset();
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_obs_overhead);
criterion_main!(benches);
