//! Criterion micro-benchmarks for the substrate crates: stemming,
//! TF-IDF vectorization, sparse cosine, inverted-index search, PageRank
//! and HITS, frequent-phrase mining, and ontology operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_stemmer(c: &mut Criterion) {
    let words = [
        "transcriptional",
        "regulation",
        "phosphorylation",
        "activities",
        "binding",
        "characterization",
        "mitochondrial",
        "ubiquitination",
    ];
    c.bench_function("porter_stem/8_words", |b| {
        b.iter(|| {
            for w in words {
                black_box(textproc::stem::porter_stem(black_box(w)));
            }
        })
    });
}

fn bench_tfidf_and_cosine(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let docs: Vec<Vec<textproc::TermId>> = (0..500)
        .map(|_| {
            (0..300)
                .map(|_| textproc::TermId(rng.gen_range(0..3000)))
                .collect()
        })
        .collect();
    let model = textproc::TfIdfModel::fit(docs.iter().map(Vec::as_slice));
    c.bench_function("tfidf/vectorize_300_tokens", |b| {
        b.iter(|| black_box(model.vectorize_normalized(black_box(&docs[0]))))
    });
    let va = model.vectorize_normalized(&docs[0]);
    let vb = model.vectorize_normalized(&docs[1]);
    c.bench_function("sparse/cosine_300nnz", |b| {
        b.iter(|| black_box(va.cosine(black_box(&vb))))
    });
}

fn bench_inverted_index(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let docs: Vec<Vec<textproc::TermId>> = (0..2000)
        .map(|_| {
            (0..200)
                .map(|_| textproc::TermId(rng.gen_range(0..5000)))
                .collect()
        })
        .collect();
    let model = textproc::TfIdfModel::fit(docs.iter().map(Vec::as_slice));
    let vectors: Vec<textproc::SparseVector> =
        docs.iter().map(|d| model.vectorize_normalized(d)).collect();
    let index = textproc::InvertedIndex::build(&vectors);
    let query = model.vectorize_normalized(&docs[7][..10]);
    c.bench_function("index/search_2k_docs", |b| {
        b.iter(|| black_box(index.search(black_box(&query), 0.0)))
    });
}

fn bench_pagerank_hits(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let n = 2000u32;
    let edges: Vec<(u32, u32)> = (0..n as usize * 12)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let g = citegraph::CitationGraph::from_edges(n, &edges);
    c.bench_function("pagerank/2k_nodes_24k_edges", |b| {
        b.iter(|| {
            black_box(citegraph::pagerank(
                &g,
                &citegraph::PageRankConfig::default(),
            ))
        })
    });
    c.bench_function("hits/2k_nodes_24k_edges", |b| {
        b.iter(|| black_box(citegraph::hits(&g, &citegraph::HitsConfig::default())))
    });
    c.bench_function("graph/induced_subgraph_200_members", |b| {
        let members: Vec<u32> = (0..200).map(|i| i * 10).collect();
        b.iter(|| black_box(g.induced_subgraph(black_box(&members))))
    });
}

fn bench_phrase_mining(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let docs: Vec<Vec<textproc::TermId>> = (0..20)
        .map(|_| {
            (0..400)
                .map(|_| textproc::TermId(rng.gen_range(0..150)))
                .collect()
        })
        .collect();
    c.bench_function("phrase/frequent_phrases_20x400", |b| {
        b.iter_batched(
            || docs.clone(),
            |d| black_box(textproc::phrase::frequent_phrases(&d, 3, 3)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_ontology(c: &mut Criterion) {
    let onto = ontology::generate_ontology(&ontology::GeneratorConfig {
        n_terms: 2000,
        ..Default::default()
    });
    c.bench_function("ontology/descendants_root", |b| {
        let root = onto.roots()[0];
        b.iter(|| black_box(onto.descendants(black_box(root))))
    });
    c.bench_function("ontology/generate_2k_terms", |b| {
        b.iter(|| {
            black_box(ontology::generate_ontology(&ontology::GeneratorConfig {
                n_terms: 2000,
                ..Default::default()
            }))
        })
    });
}

criterion_group!(
    benches,
    bench_stemmer,
    bench_tfidf_and_cosine,
    bench_inverted_index,
    bench_pagerank_hits,
    bench_phrase_mining,
    bench_ontology
);
criterion_main!(benches);
