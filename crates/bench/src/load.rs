//! Closed- and open-loop load generation over a shared lock-free
//! [`Searcher`], feeding the live-observability layer.
//!
//! N worker threads drive queries against one snapshot and record
//! end-to-end latencies into a sharded [`RollingRecorder`]; at the end
//! (and, live, on every tick) the harness reads windowed per-stage
//! stats, evaluates the configured SLOs, and reports the slow-query
//! leaderboard with captured explain traces.
//!
//! Two timing modes:
//!
//! - **Real** (`sim = false`): latencies are wall-clock measurements
//!   from a [`MonotonicClock`]; the harness also enables global
//!   metrics and attaches its recorder to the registry, so per-stage
//!   span durations (`engine.search`, `search.*`) stream into their
//!   own windowed series.
//! - **Simulated** (`sim = true`): every query still *executes* for
//!   real (results and work counters are exact), but its duration is a
//!   deterministic cost model over its [`QueryStats`], and each worker
//!   advances its own virtual clock and owns shard = worker index.
//!   Because queries are pure functions of (snapshot, query) and the
//!   merge across shards is commutative, the entire windowed output —
//!   p50/p95/p99, QPS, error rates, SLO burn — is **bit-identical
//!   across runs and thread interleavings**. CI asserts on exactly
//!   this.
//!
//! Loop shapes: **closed** — each worker issues its next query the
//! moment the previous completes (latency = service time); **open** —
//! arrivals follow a fixed per-worker rate and latency includes queue
//! wait (`completion − arrival`), so an overloaded server shows the
//! classic open-loop latency blow-up instead of coordinated omission.
//!
//! Slow-query capture: any query whose (real or simulated) latency
//! reaches the threshold is re-executed once with the global tracer
//! armed — queries are deterministic, so the re-execution *is* the
//! slow execution, minus the queueing. Captures are serialized behind
//! a process-wide mutex and filtered to the capturing thread's events,
//! so concurrent workers never interleave their explain traces.

use context_search::{
    ContextSetKind, QualityShadow, QueryStats, ScoreFunction, Searcher, ShadowConfig,
};
use obs::{
    Clock, ManualClock, MonotonicClock, QualityAggregator, QualityBaseline, QualityReport,
    QualityTracker, RollingConfig, RollingRecorder, SloReport, SloSpec, SloTracker, SlowQuery,
    SlowQueryLog, TraceData, WindowStats,
};
use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How workers pace their queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopMode {
    /// Next query starts when the previous one completes.
    Closed,
    /// Arrivals at a fixed per-worker rate; latency includes queueing.
    Open {
        /// Arrival rate per worker, queries per second.
        qps_per_worker: f64,
    },
}

impl LoopMode {
    fn name(&self) -> &'static str {
        match self {
            LoopMode::Closed => "closed",
            LoopMode::Open { .. } => "open",
        }
    }
}

/// Shape of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Worker threads (each owns one rolling shard).
    pub threads: usize,
    /// Queries issued per worker.
    pub queries_per_thread: usize,
    /// Closed or open loop.
    pub mode: LoopMode,
    /// Deterministic simulated time (see module docs).
    pub sim: bool,
    /// Result limit per query.
    pub limit: usize,
    /// Context paper set served.
    pub kind: ContextSetKind,
    /// Prestige function served.
    pub function: ScoreFunction,
    /// Window the final report reads, seconds.
    pub window_secs: u64,
    /// Slow-query threshold, nanoseconds.
    pub slow_threshold_ns: u64,
    /// Slow-query leaderboard size.
    pub slow_capacity: usize,
    /// Capture an explain trace for each slow query.
    pub capture_traces: bool,
    /// Record every Nth query as an error (0 = none) — synthetic
    /// unavailability for exercising burn-rate alerts end to end.
    pub error_every: u64,
    /// Objectives evaluated over the run.
    pub slos: Vec<SloSpec>,
    /// Shadow-score a sample of queries and report ranking quality
    /// (`None` = off; the serve path is untouched either way).
    pub quality: Option<QualityLoadConfig>,
}

/// Quality-observability knobs for one load run.
#[derive(Debug, Clone)]
pub struct QualityLoadConfig {
    /// Shadow-score one of every `sample_every` queries (>= 1).
    pub sample_every: u64,
    /// Top fraction compared between the functions' rankings.
    pub top_pct: f64,
    /// Separability sketch bins.
    pub n_bins: usize,
    /// Bounded queue depth to the shadow worker. In sim mode the
    /// submitter blocks when full (every sample must be evaluated for
    /// byte-stable reports); in real mode overflow samples are dropped
    /// and counted.
    pub queue_capacity: usize,
    /// Baseline to judge drift against (`None` = report without a
    /// verdict).
    pub baseline: Option<QualityBaseline>,
}

impl Default for QualityLoadConfig {
    fn default() -> Self {
        Self {
            sample_every: 4,
            top_pct: 0.10,
            n_bins: 10,
            queue_capacity: 256,
            baseline: None,
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            queries_per_thread: 100,
            mode: LoopMode::Closed,
            sim: true,
            limit: 10,
            kind: ContextSetKind::PatternBased,
            function: ScoreFunction::Pattern,
            window_secs: 60,
            slow_threshold_ns: 50 * 1_000_000,
            slow_capacity: 16,
            capture_traces: true,
            error_every: 0,
            slos: default_serve_slos(50 * 1_000_000),
            quality: None,
        }
    }
}

/// The stock serving objectives: "99% of `serve.query` under the
/// threshold" and "99.9% of queries succeed".
pub fn default_serve_slos(latency_threshold_ns: u64) -> Vec<SloSpec> {
    vec![
        SloSpec::latency(
            "serve-latency-p99",
            "serve.query",
            latency_threshold_ns,
            0.99,
        ),
        SloSpec::availability("serve-availability", "serve.query", 0.999),
    ]
}

/// Deterministic service-time model for simulation mode: a fixed
/// dispatch overhead plus per-unit costs for each work counter. The
/// coefficients are arbitrary but fixed — what matters is that cost is
/// a pure function of the query's exact work, so heavy contexts
/// produce the heavy tail the paper's per-context scoring predicts.
pub fn sim_cost_ns(stats: &QueryStats) -> u64 {
    200_000
        + 2_000 * stats.selected_contexts
        + 60 * stats.keyword_candidates
        + 150 * stats.scored_pairs
        + 1_000 * stats.results
}

/// Per-stage split of a simulated duration, mirroring the real span
/// hierarchy so the dashboard has the same series in both modes.
const SIM_STAGES: &[(&str, u64)] = &[
    ("search.select_contexts", 15),
    ("search.candidates", 25),
    ("search.rank", 45),
];

/// Serializes slow-query trace captures: the global tracer is a single
/// sink, so only one worker may arm it at a time.
static CAPTURE: Mutex<()> = Mutex::new(());

/// Re-execute `query` with the global tracer armed and return this
/// thread's events — the explain trace of the (deterministic) slow
/// execution. Goes through the span-free [`Searcher::search_with_stats`]
/// path so the re-execution never lands a second `serve.query`
/// observation in an attached rolling recorder.
fn capture_explain_trace(
    searcher: &Searcher,
    query: &str,
    kind: ContextSetKind,
    function: ScoreFunction,
    limit: usize,
) -> Option<TraceData> {
    let _serialize = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
    let prestige = searcher.prestige(kind, function)?;
    let tid = obs::trace::current_tid();
    obs::trace_start();
    let _ = searcher.search_with_stats(query, searcher.sets(kind), prestige, limit);
    obs::trace_finish().map(|data| data.filter_tid(tid))
}

/// One load run's worth of shared observability state plus the
/// configuration to drive it.
pub struct LoadHarness {
    config: LoadConfig,
    rolling: Arc<RollingRecorder>,
    slo: Arc<SloTracker>,
    slowlog: Arc<SlowQueryLog>,
    clock: Arc<dyn Clock>,
    queries_issued: AtomicU64,
    errors_seen: AtomicU64,
    /// Quality aggregation, when the run shadow-scores (its series
    /// land in `rolling`, so dashboards show them alongside latency).
    quality_agg: Option<Arc<QualityAggregator>>,
    quality_tracker: Option<Arc<QualityTracker>>,
}

impl LoadHarness {
    /// Build the harness: a real clock drives real mode; simulation
    /// ignores the clock entirely (workers pass explicit virtual
    /// timestamps).
    pub fn new(config: LoadConfig) -> Self {
        let clock: Arc<dyn Clock> = if config.sim {
            Arc::new(ManualClock::new(0))
        } else {
            Arc::new(MonotonicClock::new())
        };
        // The ring must answer the report's window; sizing it to the
        // configured window (min 60 s) keeps memory bounded.
        let rolling = Arc::new(RollingRecorder::new(
            RollingConfig {
                bucket_secs: 1,
                window_secs: config.window_secs.max(60),
                shards: config.threads.max(1),
            },
            clock.clone(),
        ));
        let slo = Arc::new(SloTracker::new(
            config.slos.clone(),
            obs::default_burn_windows(),
        ));
        let slowlog = Arc::new(SlowQueryLog::new(
            config.slow_threshold_ns,
            config.slow_capacity,
        ));
        let quality_agg = config
            .quality
            .as_ref()
            .map(|qc| Arc::new(QualityAggregator::new(rolling.clone(), qc.n_bins)));
        let quality_tracker = config
            .quality
            .as_ref()
            .and_then(|qc| qc.baseline.clone())
            .map(|baseline| Arc::new(QualityTracker::new(baseline)));
        Self {
            config,
            rolling,
            slo,
            slowlog,
            clock,
            queries_issued: AtomicU64::new(0),
            errors_seen: AtomicU64::new(0),
            quality_agg,
            quality_tracker,
        }
    }

    /// The harness's rolling recorder (live dashboards read it).
    pub fn rolling(&self) -> &Arc<RollingRecorder> {
        &self.rolling
    }

    /// The harness's SLO tracker.
    pub fn slo(&self) -> &Arc<SloTracker> {
        &self.slo
    }

    /// The harness's slow-query log.
    pub fn slowlog(&self) -> &Arc<SlowQueryLog> {
        &self.slowlog
    }

    /// The harness clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The quality aggregator, when this run shadow-scores.
    pub fn quality(&self) -> Option<&Arc<QualityAggregator>> {
        self.quality_agg.as_ref()
    }

    /// The quality drift tracker, when a baseline was configured.
    pub fn quality_tracker(&self) -> Option<&Arc<QualityTracker>> {
        self.quality_tracker.as_ref()
    }

    /// The configuration this harness runs.
    pub fn config(&self) -> &LoadConfig {
        &self.config
    }

    /// Run the load to completion and build the final report.
    pub fn run(&self, searcher: &Searcher, queries: &[String]) -> LoadReport {
        self.run_with_tick(searcher, queries, 0, |_| {})
    }

    /// [`run`](Self::run), invoking `tick` every `tick_ms` milliseconds
    /// from the calling thread while workers are busy (live dashboard
    /// hook; `tick_ms = 0` disables ticking). The callback sees the
    /// harness, so it can snapshot windows and SLOs mid-run.
    pub fn run_with_tick(
        &self,
        searcher: &Searcher,
        queries: &[String],
        tick_ms: u64,
        mut tick: impl FnMut(&Self),
    ) -> LoadReport {
        assert!(!queries.is_empty(), "load run needs at least one query");
        let cfg = &self.config;
        let threads = cfg.threads.max(1);
        let real_mode = !cfg.sim;
        if real_mode {
            // Per-stage span durations stream into the same recorder.
            obs::enable();
            obs::attach_rolling(self.rolling.clone());
        }
        self.queries_issued.store(0, Ordering::Relaxed);
        self.errors_seen.store(0, Ordering::Relaxed);
        let total_errors = &self.errors_seen;
        let total_queries = &self.queries_issued;
        let max_virtual_ns = AtomicU64::new(0);
        let live_workers = AtomicU64::new(threads as u64);

        // The shadow scorer lives outside the worker scope: workers
        // only submit; the background evaluation drains after they
        // finish, so the final report sees every accepted sample.
        let shadow = match (&cfg.quality, &self.quality_agg) {
            (Some(qc), Some(agg)) => Some(QualityShadow::spawn(
                searcher.clone(),
                ShadowConfig {
                    sample_every: qc.sample_every.max(1),
                    kind: cfg.kind,
                    limit: cfg.limit,
                    top_pct: qc.top_pct,
                    queue_capacity: qc.queue_capacity,
                    // Sim reports must be byte-stable, so every sample
                    // is evaluated; latencies are virtual, so blocking
                    // a worker costs nothing observable.
                    block_when_full: cfg.sim,
                },
                Arc::clone(agg),
            )),
            _ => None,
        };
        let shadow_ref = shadow.as_ref();

        std::thread::scope(|scope| {
            for w in 0..threads {
                let searcher = searcher.clone();
                let rolling = self.rolling.clone();
                let slowlog = self.slowlog.clone();
                let clock = self.clock.clone();
                let max_virtual_ns = &max_virtual_ns;
                let live_workers = &live_workers;
                scope.spawn(move || {
                    let mut virtual_ns = 0u64; // sim-mode worker clock
                    for i in 0..cfg.queries_per_thread {
                        let q_idx = (w * cfg.queries_per_thread + i) % queries.len();
                        let query = &queries[q_idx];
                        let seq = (w * cfg.queries_per_thread + i) as u64 + 1;
                        let injected_error =
                            cfg.error_every > 0 && seq.is_multiple_of(cfg.error_every);
                        total_queries.fetch_add(1, Ordering::Relaxed);

                        // Execute (errors are injected by skipping the
                        // execution — the "server" was unavailable).
                        let (stats, service_ns) = if injected_error {
                            (QueryStats::default(), 100_000)
                        } else if cfg.sim {
                            let (_, stats) = searcher
                                .query_with_stats(query, cfg.kind, cfg.function, cfg.limit)
                                .unwrap_or_default();
                            let cost = sim_cost_ns(&stats);
                            (stats, cost)
                        } else {
                            // Span-free execution path: the worker
                            // records the end-to-end `serve.query`
                            // observation itself, so the attached
                            // registry feed (which carries the
                            // per-stage spans) never double-counts the
                            // serve series.
                            let t0 = clock.now_ns();
                            let executed =
                                searcher.prestige(cfg.kind, cfg.function).map(|prestige| {
                                    searcher.search_with_stats(
                                        query,
                                        searcher.sets(cfg.kind),
                                        prestige,
                                        cfg.limit,
                                    )
                                });
                            let elapsed = clock.now_ns().saturating_sub(t0);
                            match executed {
                                Some((_, stats)) => (stats, elapsed),
                                None => {
                                    total_errors.fetch_add(1, Ordering::Relaxed);
                                    rolling.record_at(
                                        w,
                                        "serve.query",
                                        clock.now_ns(),
                                        elapsed,
                                        true,
                                    );
                                    continue;
                                }
                            }
                        };

                        // Advance the worker's timeline and derive the
                        // observed latency for its loop shape.
                        let (completion_ns, latency_ns) = if cfg.sim {
                            match cfg.mode {
                                LoopMode::Closed => {
                                    let start = virtual_ns;
                                    virtual_ns = start + service_ns;
                                    (virtual_ns, service_ns)
                                }
                                LoopMode::Open { qps_per_worker } => {
                                    let arrival =
                                        (i as f64 * 1e9 / qps_per_worker.max(1e-9)) as u64;
                                    let start = arrival.max(virtual_ns);
                                    virtual_ns = start + service_ns;
                                    (virtual_ns, virtual_ns - arrival)
                                }
                            }
                        } else {
                            (clock.now_ns(), service_ns)
                        };

                        let error = injected_error;
                        if error {
                            total_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        rolling.record_at(w, "serve.query", completion_ns, latency_ns, error);
                        if !error {
                            if let Some(shadow) = shadow_ref {
                                // Deterministic sampling key: the same
                                // (worker, iteration) pair samples the
                                // same queries on every run.
                                shadow.observe_seq(seq, query, w, completion_ns);
                            }
                        }
                        if cfg.sim && !error {
                            // Mirror the span hierarchy with synthetic
                            // per-stage series (real mode gets these
                            // from the attached registry).
                            let mut accounted = 0u64;
                            for &(stage, pct) in SIM_STAGES {
                                let d = service_ns * pct / 100;
                                accounted += d;
                                rolling.record_at(w, stage, completion_ns, d, false);
                            }
                            rolling.record_at(
                                w,
                                "engine.search",
                                completion_ns,
                                accounted + service_ns * 5 / 100,
                                false,
                            );
                        }

                        if !error && slowlog.is_slow(latency_ns) {
                            let trace = if cfg.capture_traces {
                                capture_explain_trace(
                                    &searcher,
                                    query,
                                    cfg.kind,
                                    cfg.function,
                                    cfg.limit,
                                )
                            } else {
                                None
                            };
                            slowlog.push(SlowQuery {
                                query: query.clone(),
                                duration_ns: latency_ns,
                                ts_ns: completion_ns,
                                stats: vec![
                                    ("selected_contexts".to_string(), stats.selected_contexts),
                                    ("keyword_candidates".to_string(), stats.keyword_candidates),
                                    ("scored_pairs".to_string(), stats.scored_pairs),
                                    ("results".to_string(), stats.results),
                                    ("heap_pushes".to_string(), stats.heap_pushes),
                                ],
                                trace,
                            });
                        }
                    }
                    max_virtual_ns.fetch_max(virtual_ns, Ordering::Relaxed);
                    live_workers.fetch_sub(1, Ordering::Relaxed);
                });
            }
            if tick_ms > 0 {
                while live_workers.load(Ordering::Relaxed) > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(tick_ms));
                    tick(self);
                }
            }
        });
        // Drain and join the shadow worker: every accepted sample is
        // aggregated before the report reads the summary.
        if let Some(shadow) = &shadow {
            shadow.finish();
        }
        if real_mode {
            obs::global().detach_rolling();
        }

        let wall_ns = if cfg.sim {
            max_virtual_ns.load(Ordering::Relaxed)
        } else {
            self.clock.now_ns()
        };
        self.report_at(
            wall_ns,
            total_queries.load(Ordering::Relaxed),
            total_errors.load(Ordering::Relaxed),
        )
    }

    /// A mid-run report at the clock's current reading — what a live
    /// dashboard tick renders. (Under simulated time the manual clock
    /// stays at 0, so live ticks are meaningful in real mode; simulated
    /// runs read their final report from [`run`](Self::run).)
    pub fn report_now(&self) -> LoadReport {
        self.report_at(
            self.clock.now_ns(),
            self.queries_issued.load(Ordering::Relaxed),
            self.errors_seen.load(Ordering::Relaxed),
        )
    }

    /// Build a report from the current recorder contents, read at
    /// `at_ns` on the harness timeline.
    pub fn report_at(&self, at_ns: u64, total_queries: u64, total_errors: u64) -> LoadReport {
        let windows = self.rolling.snapshot_at(self.config.window_secs, at_ns);
        let slo = self.slo.evaluate_at(&self.rolling, at_ns);
        let trace_dropped = obs::snapshot()
            .counter("obs.trace.dropped_events")
            .unwrap_or(0);
        let quality = self.quality_agg.as_ref().map(|agg| {
            let summary = agg.summary_at(at_ns);
            let drift = self
                .quality_tracker
                .as_ref()
                .map(|tracker| tracker.evaluate(&summary));
            QualityReport { summary, drift }
        });
        LoadReport {
            threads: self.config.threads,
            mode: self.config.mode.name(),
            sim: self.config.sim,
            total_queries,
            errors: total_errors,
            wall_ns: at_ns,
            window_secs: self.config.window_secs,
            windows,
            slo,
            slow: self.slowlog.leaderboard(),
            trace_dropped,
            quality,
        }
    }
}

/// Everything one load run (or one live tick) observed.
pub struct LoadReport {
    /// Worker threads that drove the load.
    pub threads: usize,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Whether durations were simulated.
    pub sim: bool,
    /// Queries issued (including injected errors).
    pub total_queries: u64,
    /// Errors observed (injected + real).
    pub errors: u64,
    /// Run length on the harness timeline, nanoseconds.
    pub wall_ns: u64,
    /// Window the stats were read over, seconds.
    pub window_secs: u64,
    /// Windowed per-series stats, sorted by series name.
    pub windows: Vec<WindowStats>,
    /// The SLO evaluation at end of run.
    pub slo: SloReport,
    /// Slow-query leaderboard, slowest first.
    pub slow: Vec<SlowQuery>,
    /// Global trace-sink overflow count at report time.
    pub trace_dropped: u64,
    /// Ranking-quality report, when the run shadow-scored.
    pub quality: Option<QualityReport>,
}

impl LoadReport {
    /// Whether any objective is in hard violation.
    pub fn has_hard_violation(&self) -> bool {
        self.slo.has_hard_violation()
    }

    /// Whether the quality drift verdict is critical — the
    /// `--fail-on-drift` signal (false when no baseline was judged).
    pub fn has_quality_drift(&self) -> bool {
        self.quality
            .as_ref()
            .and_then(|q| q.drift.as_ref())
            .is_some_and(|d| d.has_hard_violation())
    }

    /// JSON object form. Deterministic in simulation mode: windowed
    /// stats, SLO burn rates, and the slow-query leaderboard (minus
    /// trace internals) are pure functions of the workload.
    pub fn to_value(&self) -> Value {
        let slow: Vec<Value> = self
            .slow
            .iter()
            .map(|s| {
                let stats: Vec<(String, Value)> = s
                    .stats
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                    .collect();
                Value::Map(vec![
                    ("query".to_string(), Value::Str(s.query.clone())),
                    ("duration_ns".to_string(), Value::UInt(s.duration_ns)),
                    ("ts_ns".to_string(), Value::UInt(s.ts_ns)),
                    ("stats".to_string(), Value::Map(stats)),
                    ("trace_captured".to_string(), Value::Bool(s.trace.is_some())),
                ])
            })
            .collect();
        let mut value = Value::Map(vec![
            ("threads".to_string(), Value::UInt(self.threads as u64)),
            ("mode".to_string(), Value::Str(self.mode.to_string())),
            ("sim".to_string(), Value::Bool(self.sim)),
            ("total_queries".to_string(), Value::UInt(self.total_queries)),
            ("errors".to_string(), Value::UInt(self.errors)),
            ("wall_ns".to_string(), Value::UInt(self.wall_ns)),
            ("window_secs".to_string(), Value::UInt(self.window_secs)),
            (
                "windows".to_string(),
                Value::Seq(self.windows.iter().map(WindowStats::to_value).collect()),
            ),
            ("slo".to_string(), self.slo.to_value()),
            ("slow_queries".to_string(), Value::Seq(slow)),
            ("trace_dropped".to_string(), Value::UInt(self.trace_dropped)),
        ]);
        if let (Value::Map(fields), Some(quality)) = (&mut value, &self.quality) {
            fields.push(("quality".to_string(), quality.to_value()));
        }
        value
    }

    /// Pretty JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("report serializes")
    }

    /// The terminal dashboard: windowed per-stage stats, SLO burn, and
    /// the slow-query leaderboard — `litsearch top` renders exactly
    /// this.
    pub fn render_dashboard(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = format!(
            "serving dashboard — {} loop, {} workers, window {}s, t={:.1}s{}\n",
            self.mode,
            self.threads,
            self.window_secs,
            self.wall_ns as f64 / 1e9,
            if self.sim { " (simulated time)" } else { "" },
        );
        out.push_str(&format!(
            "queries {}  errors {}  throughput {:.1} q/s overall\n\n",
            self.total_queries,
            self.errors,
            if self.wall_ns == 0 {
                0.0
            } else {
                self.total_queries as f64 * 1e9 / self.wall_ns as f64
            },
        ));
        out.push_str(&format!(
            "{:<28} {:>7} {:>8} {:>9} {:>9} {:>9} {:>7}\n",
            "series", "count", "qps", "p50 ms", "p95 ms", "p99 ms", "err%"
        ));
        for w in &self.windows {
            out.push_str(&format!(
                "{:<28} {:>7} {:>8.1} {:>9.3} {:>9.3} {:>9.3} {:>6.2}%\n",
                w.name,
                w.count,
                w.qps,
                ms(w.p50_ns),
                ms(w.p95_ns),
                ms(w.p99_ns),
                w.error_rate * 100.0,
            ));
        }
        out.push_str("\nSLO burn:\n");
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>12} {:>9}\n",
            "objective", "target", "short burn", "long burn", "status"
        ));
        for e in &self.slo.evals {
            let burn = |i: usize| e.windows.get(i).map_or(0.0, |w| w.burn_rate);
            out.push_str(&format!(
                "{:<24} {:>8.4} {:>12.3} {:>12.3} {:>9}\n",
                e.spec.name,
                e.spec.target,
                burn(0),
                burn(1),
                match e.status {
                    obs::SloStatus::Ok => "ok",
                    obs::SloStatus::Warn => "WARN",
                    obs::SloStatus::Critical => "CRITICAL",
                },
            ));
        }
        out.push_str("\nslow queries (threshold-crossing, slowest first):\n");
        if self.slow.is_empty() {
            out.push_str("  none\n");
        } else {
            for s in &self.slow {
                let stat = |key: &str| {
                    s.stats
                        .iter()
                        .find(|(k, _)| k == key)
                        .map_or(0, |(_, v)| *v)
                };
                out.push_str(&format!(
                    "  {:>9.3} ms  {:<32} scored_pairs={:<7} heap_pushes={:<7} trace={}\n",
                    ms(s.duration_ns),
                    s.query,
                    stat("scored_pairs"),
                    stat("heap_pushes"),
                    if s.trace.is_some() { "yes" } else { "no" },
                ));
            }
        }
        if let Some(quality) = &self.quality {
            let s = &quality.summary;
            out.push_str(&format!(
                "\nranking quality (shadow-scored sample):\n\
                 sampled {}  dropped {}  winning-context agreement {:.1}%\n",
                s.sampled,
                s.dropped,
                100.0 * s.agreement_rate,
            ));
            out.push_str(&format!(
                "{:<34} {:>7} {:>10}\n",
                "overlap pair", "queries", "mean"
            ));
            for o in &s.overlaps {
                out.push_str(&format!(
                    "{:<34} {:>7} {:>10.4}\n",
                    o.series, o.count, o.mean
                ));
            }
            out.push_str(&format!(
                "{:<34} {:>7} {:>7} {:>7} {:>10}\n",
                "score function", "scores", "p50", "p90", "sep SD"
            ));
            for f in &s.functions {
                out.push_str(&format!(
                    "{:<34} {:>7} {:>7.3} {:>7.3} {:>10.2}\n",
                    f.series, f.count, f.p50, f.p90, f.separability_sd
                ));
            }
            if let Some(drift) = &quality.drift {
                let verdict = match drift.status {
                    obs::SloStatus::Ok => "ok",
                    obs::SloStatus::Warn => "WARN",
                    obs::SloStatus::Critical => "CRITICAL",
                };
                out.push_str(&format!("quality drift vs baseline: {verdict}\n"));
                for c in drift
                    .checks
                    .iter()
                    .filter(|c| c.status != obs::SloStatus::Ok)
                {
                    out.push_str(&format!(
                        "  {} {} observed {:.4} (bound {})\n",
                        c.name, c.subject, c.observed, c.bound
                    ));
                }
            }
        }
        if self.trace_dropped > 0 {
            out.push_str(&format!(
                "\nwarning: trace sink dropped {} events (obs.trace.dropped_events)\n",
                self.trace_dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExpConfig, Setup};
    use std::sync::OnceLock;

    /// One tiny shared testbed for every load test (building a
    /// snapshot is the expensive part).
    fn testbed() -> &'static (Setup, Vec<String>) {
        static TESTBED: OnceLock<(Setup, Vec<String>)> = OnceLock::new();
        TESTBED.get_or_init(|| {
            let setup = Setup::build(ExpConfig {
                n_terms: 60,
                n_papers: 150,
                n_queries: 12,
                seed: 5,
                min_context_size: 5,
                ..Default::default()
            });
            let queries: Vec<String> = setup.queries.iter().map(|q| q.text.clone()).collect();
            (setup, queries)
        })
    }

    fn sim_config(threads: usize) -> LoadConfig {
        LoadConfig {
            threads,
            queries_per_thread: 30,
            slow_threshold_ns: 300_000,
            slow_capacity: 4,
            error_every: 10,
            ..Default::default()
        }
    }

    #[test]
    fn simulated_runs_are_bit_identical_across_runs() {
        let (setup, queries) = testbed();
        let run = || {
            let harness = LoadHarness::new(sim_config(8));
            let report = harness.run(&setup.searcher, queries);
            report.to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "sim-mode report must be bit-identical");
        assert!(a.contains("serve.query"));
        assert!(a.contains("search.rank"));
    }

    #[test]
    fn slow_queries_carry_captured_explain_traces() {
        let (setup, queries) = testbed();
        let harness = LoadHarness::new(LoadConfig {
            threads: 2,
            queries_per_thread: 10,
            slow_threshold_ns: 1, // everything is slow
            slow_capacity: 4,
            ..Default::default()
        });
        let report = harness.run(&setup.searcher, queries);
        assert!(!report.slow.is_empty());
        for s in &report.slow {
            let trace = s.trace.as_ref().expect("slow query carries a trace");
            assert!(
                trace.events.iter().any(|e| e.name == "engine.search"),
                "trace has the search span"
            );
            assert!(
                trace.events.iter().any(|e| e.name == "explain.hit"),
                "trace has explain instants"
            );
        }
    }

    #[test]
    fn open_loop_latency_includes_queue_wait() {
        let (setup, queries) = testbed();
        let closed = LoadHarness::new(sim_config(2)).run(&setup.searcher, queries);
        let open = LoadHarness::new(LoadConfig {
            mode: LoopMode::Open {
                // Arrivals far faster than service: the queue builds
                // and open-loop latency must exceed pure service time.
                qps_per_worker: 1e6,
            },
            ..sim_config(2)
        })
        .run(&setup.searcher, queries);
        let p99 = |r: &LoadReport| {
            r.windows
                .iter()
                .find(|w| w.name == "serve.query")
                .expect("serve.query series")
                .p99_ns
        };
        assert!(
            p99(&open) > p99(&closed),
            "open p99 {} must exceed closed p99 {}",
            p99(&open),
            p99(&closed)
        );
    }

    #[test]
    fn injected_errors_burn_the_availability_slo() {
        let (setup, queries) = testbed();
        let harness = LoadHarness::new(LoadConfig {
            error_every: 2, // 50% unavailability
            capture_traces: false,
            ..sim_config(2)
        });
        let report = harness.run(&setup.searcher, queries);
        assert!(report.errors > 0);
        assert!(
            report.has_hard_violation(),
            "50% error rate against 99.9% availability must be critical"
        );
        let avail = report
            .slo
            .evals
            .iter()
            .find(|e| e.spec.name == "serve-availability")
            .expect("availability objective");
        assert_eq!(avail.status, obs::SloStatus::Critical);
        // The dashboard renders the violation.
        assert!(report.render_dashboard().contains("CRITICAL"));
    }

    #[test]
    fn dashboard_renders_all_sections() {
        let (setup, queries) = testbed();
        let report = LoadHarness::new(sim_config(2)).run(&setup.searcher, queries);
        let dash = report.render_dashboard();
        assert!(dash.contains("serving dashboard"));
        assert!(dash.contains("serve.query"));
        assert!(dash.contains("SLO burn:"));
        assert!(dash.contains("slow queries"));
    }

    fn quality_config(threads: usize) -> LoadConfig {
        LoadConfig {
            quality: Some(QualityLoadConfig {
                sample_every: 2,
                ..Default::default()
            }),
            ..sim_config(threads)
        }
    }

    #[test]
    fn quality_sampling_leaves_serve_windows_bit_identical() {
        let (setup, queries) = testbed();
        let without = LoadHarness::new(sim_config(8)).run(&setup.searcher, queries);
        let with = LoadHarness::new(quality_config(8)).run(&setup.searcher, queries);
        // Quality records only into `quality.*` series, so every
        // serve/stage series is bit-identical with sampling on (the
        // windows merely gain the quality series alongside).
        let series_json = |r: &LoadReport, name: &str| {
            r.windows
                .iter()
                .find(|w| w.name == name)
                .map(|w| serde_json::to_string(&w.to_value()).unwrap())
        };
        for series in [
            "serve.query",
            "engine.search",
            "search.select_contexts",
            "search.candidates",
            "search.rank",
        ] {
            assert_eq!(
                series_json(&without, series),
                series_json(&with, series),
                "series {series} must be unaffected by quality sampling"
            );
        }
        // Every other report field (SLOs, slow queries, totals) agrees
        // too once the quality-only parts are stripped.
        let strip = |r: &LoadReport| {
            let mut v = r.to_value();
            if let Value::Map(fields) = &mut v {
                fields.retain(|(k, _)| k != "quality" && k != "windows");
            }
            serde_json::to_string(&v).unwrap()
        };
        assert_eq!(strip(&without), strip(&with));
    }

    #[test]
    fn quality_reports_are_bit_identical_across_runs() {
        let (setup, queries) = testbed();
        let run = || {
            let harness = LoadHarness::new(quality_config(8));
            let report = harness.run(&setup.searcher, queries);
            let quality = report.quality.as_ref().expect("quality configured");
            assert!(quality.summary.sampled > 0, "samples were evaluated");
            assert_eq!(quality.summary.dropped, 0, "sim mode never drops");
            quality.to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "quality report must be byte-stable in sim mode");
        assert!(a.contains("quality.overlap.citation_text"));
        assert!(a.contains("quality.separability.pattern"));
    }

    #[test]
    fn quality_drift_gate_fires_on_flattened_prestige() {
        let (setup, queries) = testbed();
        // Healthy run writes the baseline...
        let healthy = LoadHarness::new(quality_config(4)).run(&setup.searcher, queries);
        let summary = &healthy.quality.as_ref().unwrap().summary;
        let baseline =
            QualityBaseline::from_summary(summary, 10, &obs::BaselineTolerances::default());
        assert_eq!(
            baseline.evaluate(summary).status,
            obs::SloStatus::Ok,
            "healthy run judges clean against its own baseline"
        );

        // ...then the citation function collapses to a constant table
        // (the what-if override keeps the snapshot itself pristine).
        let flat = {
            let table = setup
                .searcher
                .prestige(ContextSetKind::PatternBased, ScoreFunction::Citation)
                .expect("citation table prepared");
            let mut by_context = std::collections::HashMap::new();
            for context in table.contexts() {
                by_context.insert(
                    context,
                    table
                        .scores(context)
                        .iter()
                        .map(|&(p, _)| (p, 1.0))
                        .collect::<Vec<_>>(),
                );
            }
            context_search::PrestigeScores::new(by_context, ScoreFunction::Citation)
        };
        let perturbed = setup.searcher.with_prestige_override(
            ContextSetKind::PatternBased,
            ScoreFunction::Citation,
            flat,
        );
        let drifted = LoadHarness::new(LoadConfig {
            quality: Some(QualityLoadConfig {
                sample_every: 2,
                baseline: Some(baseline),
                ..Default::default()
            }),
            ..sim_config(4)
        })
        .run(&perturbed, queries);
        let drift = drifted
            .quality
            .as_ref()
            .unwrap()
            .drift
            .as_ref()
            .expect("baseline produces a verdict");
        assert!(
            drifted.has_quality_drift(),
            "flattened prestige must trip the gate; verdict was {:?}: {}",
            drift.status,
            drift
                .checks
                .iter()
                .map(|c| format!(
                    "{} {} obs={:.4} [{}]",
                    c.name, c.subject, c.observed, c.bound
                ))
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}
