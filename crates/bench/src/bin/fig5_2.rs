//! Regenerates fig5_2 of the paper. See crates/bench/src/experiments.rs.
fn main() {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    bench::setup::emit("fig5_2", &bench::fig5_2(&setup));
}
