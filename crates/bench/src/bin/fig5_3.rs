//! Regenerates fig5_3 of the paper. See crates/bench/src/experiments.rs.
fn main() {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    bench::setup::emit("fig5_3", &bench::fig5_3(&setup));
}
