//! Within-context citation-graph sparsity per level (the mechanism
//! behind the paper's citation-function findings).
fn main() -> std::process::ExitCode {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    if let Err(e) = bench::setup::emit("sparsity_analysis", &bench::sparsity_analysis(&setup)) {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
