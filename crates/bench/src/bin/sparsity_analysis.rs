//! Within-context citation-graph sparsity per level (the mechanism
//! behind the paper's citation-function findings).
fn main() {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    bench::setup::emit("sparsity_analysis", &bench::sparsity_analysis(&setup));
}
