//! Regenerates fig5_5 of the paper. See crates/bench/src/experiments.rs.
fn main() {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    bench::setup::emit("fig5_5", &bench::fig5_5(&setup));
}
