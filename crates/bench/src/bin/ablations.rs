//! Regenerates ablations of the paper. See crates/bench/src/experiments.rs.
fn main() -> std::process::ExitCode {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    if let Err(e) = bench::setup::emit("ablations", &bench::ablations(&setup)) {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
