//! `serve_load` — closed/open-loop load generator over a shared
//! [`Searcher`], emitting the full serving-observability report:
//! windowed per-stage latencies, SLO burn rates, and the slow-query
//! leaderboard with captured explain traces.
//!
//! ```text
//! serve_load [--snapshot DIR]        serve a warm snapshot from disk
//!            [--terms N --papers N --seed N --quick]
//!                                    …or generate + prepare in-process
//!            [--threads N]           worker threads        (default 8)
//!            [--queries N]           queries per worker    (default 200)
//!            [--mode closed|open]    loop shape            (default closed)
//!            [--qps RATE]            open-loop per-worker arrival rate
//!            [--real]                wall-clock timing (default: --sim,
//!                                    deterministic virtual time)
//!            [--kind text|pattern]   context paper set     (default pattern)
//!            [--function citation|text|pattern]
//!            [--limit N]             results per query     (default 10)
//!            [--window SECS]         report window         (default 60)
//!            [--slow-threshold-ms MS] slow-query capture bar (default 50)
//!            [--slow-threshold-us US] …same, microseconds (sim scales)
//!            [--slo-latency-ms MS]   latency-SLO threshold (default 50)
//!            [--error-every N]       inject 1/N synthetic errors
//!            [--no-traces]           skip explain-trace capture
//!            [--out FILE]            full report JSON
//!            [--slo-json FILE]       SLO report JSON
//!            [--slo-md FILE]         SLO report markdown
//!            [--slow-jsonl FILE]     slow-query log incl. traces, JSONL
//!            [--quiet]               suppress the dashboard on stdout
//!            [--fail-on-violation]   exit 1 on any hard SLO violation
//!            [--quality N]           shadow-score 1/N queries under all
//!                                    three prestige functions
//!            [--quality-top-pct F]   overlap depth as a fraction (default 0.10)
//!            [--quality-baseline F]  judge drift against a checked-in baseline
//!            [--write-quality-baseline F] derive a baseline from this run
//!            [--quality-json FILE]   quality report JSON
//!            [--quality-md FILE]     quality report markdown
//!            [--fail-on-drift]       exit 1 on a critical quality drift
//!
//! Network mode (drive a running `litsearch serve` over the wire):
//!            [--target http://HOST:PORT]  POST /v1/search instead of
//!                                    calling the Searcher in-process
//!            [--fail-on-shed]        exit 1 if the server shed (429)
//!                                    or rejected (503) anything
//!
//! Overload comparison (deterministic queueing model, no sockets):
//!            [--overload-sim]        compare shedding vs unbounded
//!                                    queueing at --overload-factor ×
//!                                    capacity; --fail-on-violation
//!                                    fails unless shedding keeps p99
//!                                    inside --deadline-ms and the
//!                                    unbounded control does not
//!            [--deadline-ms MS]      modeled deadline      (default 50)
//!            [--overload-factor F]   arrival overload      (default 2.0)
//!            [--sim-workers N]       modeled workers       (default 4)
//!            [--sim-queue-depth N]   modeled queue bound   (default 64)
//!            [--sim-requests N]      modeled arrivals      (default 4000)
//!            [--overload-json FILE]  verdict JSON
//! ```
//!
//! Exit code 0 on success, 1 on a hard SLO violation (only with
//! `--fail-on-violation`) or a critical ranking-quality drift (only
//! with `--fail-on-drift`), 2 on usage/IO errors.

use bench::load::{LoadConfig, LoadHarness, LoopMode, QualityLoadConfig};
use bench::netload::{self, OverloadConfig};
use bench::setup::{ExpConfig, Setup};
use context_search::persist::load_snapshot;
use context_search::{ContextSetKind, EngineConfig, ScoreFunction, Searcher};
use corpus::queries::{generate_queries, QueryConfig};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

struct Args {
    snapshot: Option<String>,
    terms: usize,
    papers: usize,
    seed: u64,
    quick: bool,
    config: LoadConfig,
    qps: f64,
    open: bool,
    out: Option<String>,
    slo_json: Option<String>,
    slo_md: Option<String>,
    slow_jsonl: Option<String>,
    quiet: bool,
    fail_on_violation: bool,
    quality_json: Option<String>,
    quality_md: Option<String>,
    write_quality_baseline: Option<String>,
    fail_on_drift: bool,
    target: Option<String>,
    fail_on_shed: bool,
    slo_latency_ns: u64,
    overload_sim: bool,
    overload: OverloadConfig,
    overload_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut a = Args {
        snapshot: None,
        terms: 200,
        papers: 1_500,
        seed: 2007,
        quick: false,
        config: LoadConfig {
            threads: 8,
            queries_per_thread: 200,
            ..Default::default()
        },
        qps: 200.0,
        open: false,
        out: None,
        slo_json: None,
        slo_md: None,
        slow_jsonl: None,
        quiet: false,
        fail_on_violation: false,
        quality_json: None,
        quality_md: None,
        write_quality_baseline: None,
        fail_on_drift: false,
        target: None,
        fail_on_shed: false,
        slo_latency_ns: 50 * 1_000_000,
        overload_sim: false,
        overload: OverloadConfig::default(),
        overload_json: None,
    };
    // Quality knobs accumulate here; the config gets them only when
    // `--quality` (or `--quality-baseline`) actually enables sampling.
    let mut quality = QualityLoadConfig::default();
    let mut quality_on = false;
    let mut i = 0;
    let next = |argv: &[String], i: usize, what: &str| -> Result<String, String> {
        argv.get(i)
            .cloned()
            .ok_or_else(|| format!("{what} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--snapshot" => {
                i += 1;
                a.snapshot = Some(next(&argv, i, "--snapshot")?);
            }
            "--terms" => {
                i += 1;
                a.terms = parse(&next(&argv, i, "--terms")?)?;
            }
            "--papers" => {
                i += 1;
                a.papers = parse(&next(&argv, i, "--papers")?)?;
            }
            "--seed" => {
                i += 1;
                a.seed = parse(&next(&argv, i, "--seed")?)?;
            }
            "--quick" => a.quick = true,
            "--threads" => {
                i += 1;
                a.config.threads = parse(&next(&argv, i, "--threads")?)?;
            }
            "--queries" => {
                i += 1;
                a.config.queries_per_thread = parse(&next(&argv, i, "--queries")?)?;
            }
            "--mode" => {
                i += 1;
                match next(&argv, i, "--mode")?.as_str() {
                    "closed" => a.open = false,
                    "open" => a.open = true,
                    other => return Err(format!("--mode wants closed|open, got {other:?}")),
                }
            }
            "--qps" => {
                i += 1;
                a.qps = parse(&next(&argv, i, "--qps")?)?;
            }
            "--sim" => a.config.sim = true,
            "--real" => a.config.sim = false,
            "--kind" => {
                i += 1;
                a.config.kind = match next(&argv, i, "--kind")?.as_str() {
                    "text" => ContextSetKind::TextBased,
                    "pattern" => ContextSetKind::PatternBased,
                    other => return Err(format!("--kind wants text|pattern, got {other:?}")),
                };
            }
            "--function" => {
                i += 1;
                a.config.function = match next(&argv, i, "--function")?.as_str() {
                    "citation" => ScoreFunction::Citation,
                    "text" => ScoreFunction::Text,
                    "pattern" => ScoreFunction::Pattern,
                    other => {
                        return Err(format!(
                            "--function wants citation|text|pattern, got {other:?}"
                        ))
                    }
                };
            }
            "--limit" => {
                i += 1;
                a.config.limit = parse(&next(&argv, i, "--limit")?)?;
            }
            "--window" => {
                i += 1;
                a.config.window_secs = parse(&next(&argv, i, "--window")?)?;
            }
            "--slow-threshold-ms" => {
                i += 1;
                let ms: u64 = parse(&next(&argv, i, "--slow-threshold-ms")?)?;
                a.config.slow_threshold_ns = ms * 1_000_000;
            }
            "--slow-threshold-us" => {
                i += 1;
                let us: u64 = parse(&next(&argv, i, "--slow-threshold-us")?)?;
                a.config.slow_threshold_ns = us * 1_000;
            }
            "--slo-latency-ms" => {
                i += 1;
                let ms: u64 = parse(&next(&argv, i, "--slo-latency-ms")?)?;
                a.slo_latency_ns = ms * 1_000_000;
                a.config.slos = bench::load::default_serve_slos(a.slo_latency_ns);
            }
            "--error-every" => {
                i += 1;
                a.config.error_every = parse(&next(&argv, i, "--error-every")?)?;
            }
            "--no-traces" => a.config.capture_traces = false,
            "--out" => {
                i += 1;
                a.out = Some(next(&argv, i, "--out")?);
            }
            "--slo-json" => {
                i += 1;
                a.slo_json = Some(next(&argv, i, "--slo-json")?);
            }
            "--slo-md" => {
                i += 1;
                a.slo_md = Some(next(&argv, i, "--slo-md")?);
            }
            "--slow-jsonl" => {
                i += 1;
                a.slow_jsonl = Some(next(&argv, i, "--slow-jsonl")?);
            }
            "--quiet" => a.quiet = true,
            "--fail-on-violation" => a.fail_on_violation = true,
            "--quality" => {
                i += 1;
                let every: u64 = parse(&next(&argv, i, "--quality")?)?;
                quality.sample_every = every.max(1);
                quality_on = true;
            }
            "--quality-top-pct" => {
                i += 1;
                quality.top_pct = parse(&next(&argv, i, "--quality-top-pct")?)?;
            }
            "--quality-baseline" => {
                i += 1;
                let path = next(&argv, i, "--quality-baseline")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                quality.baseline = Some(
                    obs::QualityBaseline::from_json(&text).map_err(|e| format!("{path}: {e}"))?,
                );
                quality_on = true;
            }
            "--write-quality-baseline" => {
                i += 1;
                a.write_quality_baseline = Some(next(&argv, i, "--write-quality-baseline")?);
            }
            "--quality-json" => {
                i += 1;
                a.quality_json = Some(next(&argv, i, "--quality-json")?);
            }
            "--quality-md" => {
                i += 1;
                a.quality_md = Some(next(&argv, i, "--quality-md")?);
            }
            "--fail-on-drift" => a.fail_on_drift = true,
            "--target" => {
                i += 1;
                a.target = Some(next(&argv, i, "--target")?);
            }
            "--fail-on-shed" => a.fail_on_shed = true,
            "--overload-sim" => a.overload_sim = true,
            "--deadline-ms" => {
                i += 1;
                let ms: u64 = parse(&next(&argv, i, "--deadline-ms")?)?;
                a.overload.deadline_ns = ms * 1_000_000;
            }
            "--overload-factor" => {
                i += 1;
                a.overload.overload_factor = parse(&next(&argv, i, "--overload-factor")?)?;
            }
            "--sim-workers" => {
                i += 1;
                a.overload.workers = parse(&next(&argv, i, "--sim-workers")?)?;
            }
            "--sim-queue-depth" => {
                i += 1;
                a.overload.queue_depth = parse(&next(&argv, i, "--sim-queue-depth")?)?;
            }
            "--sim-requests" => {
                i += 1;
                a.overload.n_requests = parse(&next(&argv, i, "--sim-requests")?)?;
            }
            "--overload-json" => {
                i += 1;
                a.overload_json = Some(next(&argv, i, "--overload-json")?);
            }
            flag => return Err(format!("unknown flag {flag}")),
        }
        i += 1;
    }
    if a.open {
        a.config.mode = LoopMode::Open {
            qps_per_worker: a.qps,
        };
    }
    if quality_on {
        a.config.quality = Some(quality);
    } else if a.quality_json.is_some()
        || a.quality_md.is_some()
        || a.write_quality_baseline.is_some()
        || a.fail_on_drift
    {
        return Err("quality outputs need --quality N (shadow sampling is off)".to_string());
    }
    Ok(a)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

/// The workload's (searcher, query texts), from a warm snapshot or an
/// in-process generate + prepare.
fn workload(a: &Args) -> Result<(Searcher, Vec<String>), String> {
    if let Some(dir) = &a.snapshot {
        eprintln!("loading snapshot from {dir}…");
        let snapshot =
            load_snapshot(Path::new(dir), EngineConfig::default()).map_err(|e| e.to_string())?;
        let queries = generate_queries(
            snapshot.ontology(),
            snapshot.corpus(),
            &QueryConfig {
                seed: a.seed,
                ..Default::default()
            },
        );
        let queries = queries.into_iter().map(|q| q.text).collect();
        Ok((snapshot.searcher(), queries))
    } else {
        let mut cfg = ExpConfig {
            n_terms: a.terms,
            n_papers: a.papers,
            seed: a.seed,
            min_context_size: 10,
            ..Default::default()
        };
        if a.quick {
            cfg.n_terms = 200;
            cfg.n_papers = 1_500;
            cfg.n_queries = 40;
        }
        eprintln!(
            "generating + preparing ({} terms, {} papers)…",
            cfg.n_terms, cfg.n_papers
        );
        let setup = Setup::build(cfg);
        let queries = setup.queries.iter().map(|q| q.text.clone()).collect();
        Ok((setup.searcher, queries))
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.overload_sim {
        return run_overload_sim(&args);
    }
    if args.target.is_some() {
        return run_network_mode(&args);
    }
    let (searcher, queries) = workload(&args)?;
    if queries.is_empty() {
        return Err("workload produced no queries".to_string());
    }
    eprintln!(
        "running {} loop: {} workers × {} queries ({} timing)…",
        if args.open { "open" } else { "closed" },
        args.config.threads,
        args.config.queries_per_thread,
        if args.config.sim {
            "simulated"
        } else {
            "wall-clock"
        },
    );
    let harness = LoadHarness::new(args.config.clone());
    let report = harness.run(&searcher, &queries);

    if !args.quiet {
        print!("{}", report.render_dashboard());
    }
    if let Some(path) = &args.out {
        write_file(path, &report.to_json())?;
        eprintln!("report: {path}");
    }
    if let Some(path) = &args.slo_json {
        write_file(path, &report.slo.to_json())?;
        eprintln!("slo report: {path}");
    }
    if let Some(path) = &args.slo_md {
        write_file(path, &report.slo.to_markdown())?;
        eprintln!("slo report: {path}");
    }
    if let Some(path) = &args.slow_jsonl {
        write_file(path, &harness.slowlog().dump_jsonl())?;
        eprintln!("slow-query log: {path}");
    }
    if let Some(quality) = &report.quality {
        if let Some(path) = &args.quality_json {
            write_file(path, &quality.to_json())?;
            eprintln!("quality report: {path}");
        }
        if let Some(path) = &args.quality_md {
            write_file(path, &quality.to_markdown())?;
            eprintln!("quality report: {path}");
        }
        if let Some(path) = &args.write_quality_baseline {
            let n_bins = args.config.quality.as_ref().map_or(10, |q| q.n_bins);
            let baseline = obs::QualityBaseline::from_summary(
                &quality.summary,
                n_bins,
                &obs::BaselineTolerances::default(),
            );
            write_file(path, &baseline.to_json())?;
            eprintln!("quality baseline: {path}");
        }
    }
    let mut ok = true;
    if report.has_hard_violation() {
        eprintln!("SLO HARD VIOLATION (see report)");
        if args.fail_on_violation {
            ok = false;
        }
    }
    if report.has_quality_drift() {
        eprintln!("RANKING-QUALITY DRIFT (see quality report)");
        if args.fail_on_drift {
            ok = false;
        }
    }
    Ok(ok)
}

/// `--target` mode: drive a live server over the wire with the PR 5
/// worker model and gate on the network SLOs.
fn run_network_mode(args: &Args) -> Result<bool, String> {
    let target = args.target.as_deref().unwrap_or_default();
    let (_searcher, queries) = workload(args)?;
    if queries.is_empty() {
        return Err("workload produced no queries".to_string());
    }
    let mut config = args.config.clone();
    // Wire latencies are wall-clock by definition; the sim path stays
    // available for the in-process harness only.
    config.sim = false;
    config.capture_traces = false;
    config.slos = netload::network_serve_slos(args.slo_latency_ns);
    // Shadow scoring runs inside the server (`litsearch serve
    // --quality N`), not in the client.
    config.quality = None;
    eprintln!(
        "driving {target}: {} loop, {} workers × {} queries…",
        if args.open { "open" } else { "closed" },
        config.threads,
        config.queries_per_thread,
    );
    let harness = LoadHarness::new(config);
    let net = netload::run_network(&harness, target, &queries)?;

    if !args.quiet {
        print!("{}", net.render_dashboard());
    }
    if let Some(path) = &args.out {
        write_file(path, &net.to_json())?;
        eprintln!("report: {path}");
    }
    if let Some(path) = &args.slo_json {
        write_file(path, &net.report.slo.to_json())?;
        eprintln!("slo report: {path}");
    }
    if let Some(path) = &args.slo_md {
        write_file(path, &net.report.slo.to_markdown())?;
        eprintln!("slo report: {path}");
    }
    if let Some(path) = &args.slow_jsonl {
        write_file(path, &harness.slowlog().dump_jsonl())?;
        eprintln!("slow-query log: {path}");
    }
    let mut ok = true;
    if net.report.has_hard_violation() {
        eprintln!("SLO HARD VIOLATION (see report)");
        if args.fail_on_violation {
            ok = false;
        }
    }
    if net.shed + net.rejected > 0 {
        eprintln!(
            "server shed load at this rate: {} × 429, {} × 503",
            net.shed, net.rejected
        );
        if args.fail_on_shed {
            ok = false;
        }
    }
    if net.transport_errors > 0 {
        eprintln!(
            "{} transport errors (counted as SLO errors)",
            net.transport_errors
        );
    }
    Ok(ok)
}

/// `--overload-sim` mode: the deterministic shedding-vs-unbounded
/// comparison over real per-query service costs.
fn run_overload_sim(args: &Args) -> Result<bool, String> {
    let (searcher, queries) = workload(args)?;
    if queries.is_empty() {
        return Err("workload produced no queries".to_string());
    }
    let costs = netload::service_costs(
        &searcher,
        &queries,
        args.config.kind,
        args.config.function,
        args.config.limit,
    );
    if costs.is_empty() {
        return Err("no query produced a service-cost estimate".to_string());
    }
    let verdict = netload::overload_compare(&costs, &args.overload);
    let json = serde_json::to_string_pretty(&verdict).map_err(|e| e.to_string())?;
    if !args.quiet {
        println!("{json}");
    }
    if let Some(path) = &args.overload_json {
        write_file(path, &json)?;
        eprintln!("overload verdict: {path}");
    }
    let pass = matches!(verdict.get("pass"), Some(serde::Value::Bool(true)));
    if !pass {
        eprintln!(
            "OVERLOAD VERDICT FAILED: shedding did not beat unbounded queueing at {}× load",
            args.overload.overload_factor
        );
    }
    Ok(pass || !args.fail_on_violation)
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("write {path}: {e}"))
}
