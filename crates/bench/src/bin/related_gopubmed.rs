//! Related-work comparison: GoPubMed-style categorization (§6).
fn main() {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    bench::setup::emit("related_gopubmed", &bench::related_gopubmed(&setup));
}
