//! Related-work comparison: GoPubMed-style categorization (§6).
fn main() -> std::process::ExitCode {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    if let Err(e) = bench::setup::emit("related_gopubmed", &bench::related_gopubmed(&setup)) {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
