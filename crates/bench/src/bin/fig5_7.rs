//! Regenerates fig5_7 of the paper. See crates/bench/src/experiments.rs.
fn main() {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    bench::setup::emit("fig5_7", &bench::fig5_7(&setup));
}
