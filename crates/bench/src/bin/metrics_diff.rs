//! `metrics-diff` — CI perf-regression gate over two telemetry
//! snapshots.
//!
//! ```text
//! metrics-diff <baseline.json> <current.json>
//!     [--max-regression PCT]   allowed p50 growth for gated spans
//!                              (percent, default 300)
//!     [--min-baseline-ns NS]   noise floor; smaller baselines are
//!                              never gated (default 10000)
//!     [--gate SPAN]            replace the default gated-span set
//!                              (repeatable)
//!     [--span-threshold SPAN=PCT]  per-span override (repeatable)
//! ```
//!
//! Exit code 0 when every gated span stays within threshold, 1 on any
//! regression or a gated span missing from the current snapshot, 2 on
//! usage/IO errors.

use bench::diff::{diff_snapshots, DiffThresholds};
use obs::MetricsSnapshot;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut thresholds = DiffThresholds::default();
    let mut custom_gates: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                i += 1;
                let pct: f64 = next(&args, i, "--max-regression PCT")?
                    .parse()
                    .map_err(|_| "--max-regression must be a percentage".to_string())?;
                thresholds.max_regression = pct / 100.0;
            }
            "--min-baseline-ns" => {
                i += 1;
                thresholds.min_baseline_ns = next(&args, i, "--min-baseline-ns NS")?
                    .parse()
                    .map_err(|_| "--min-baseline-ns must be an integer".to_string())?;
            }
            "--gate" => {
                i += 1;
                custom_gates
                    .get_or_insert_with(Vec::new)
                    .push(next(&args, i, "--gate SPAN")?.to_string());
            }
            "--span-threshold" => {
                i += 1;
                let spec = next(&args, i, "--span-threshold SPAN=PCT")?;
                let (span, pct) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--span-threshold wants SPAN=PCT, got {spec:?}"))?;
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| format!("bad percentage in {spec:?}"))?;
                thresholds.per_span.push((span.to_string(), pct / 100.0));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if let Some(gates) = custom_gates {
        thresholds.gated = gates;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err("usage: metrics-diff <baseline.json> <current.json> [flags]".to_string());
    };

    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let report = diff_snapshots(&baseline, &current, &thresholds);
    print!("{}", report.render());
    if report.passed() {
        println!("\nperf gate PASSED");
        Ok(true)
    } else {
        println!("\nperf gate FAILED:");
        for f in report.failures() {
            println!("  {}: {:?}", f.name, f.verdict);
        }
        Ok(false)
    }
}

fn next<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{what}: missing value"))
}

fn load(path: &str) -> Result<MetricsSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    MetricsSnapshot::from_json(&text).map_err(|e| format!("{path}: not a MetricsSnapshot: {e}"))
}
