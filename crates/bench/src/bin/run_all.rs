//! Runs every experiment on one shared setup and writes all result
//! tables to `results/` (plus `results/experiments_output.md` and the
//! telemetry snapshot `results/metrics.json`).

use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[run_all] error: {e}");
            ExitCode::FAILURE
        }
    }
}

type Experiment = fn(&bench::Setup) -> Vec<eval::report::Table>;

const EXPERIMENTS: &[(&str, Experiment)] = &[
    ("testbed_stats", bench::testbed_stats),
    ("fig5_1", bench::fig5_1),
    ("fig5_2", bench::fig5_2),
    ("fig5_3", bench::fig5_3),
    ("fig5_4", bench::fig5_4),
    ("fig5_5", bench::fig5_5),
    ("fig5_6", bench::fig5_6),
    ("fig5_7", bench::fig5_7),
    ("baseline_vs_context", bench::baseline_vs_context),
    ("related_gopubmed", bench::related_gopubmed),
    ("sparsity_analysis", bench::sparsity_analysis),
    ("ablations", bench::ablations),
];

fn run() -> Result<(), String> {
    obs::enable();
    let config = bench::ExpConfig::from_args();
    let trace_dir = config.trace_dir.clone();
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let setup = bench::Setup::build(config);
    let mut all = Vec::new();
    for &(name, experiment) in EXPERIMENTS {
        obs::progress(&format!("[run_all] {name}"));
        if trace_dir.is_some() {
            obs::trace_start();
        }
        let tables = experiment(&setup);
        if let Some(dir) = &trace_dir {
            let data = obs::trace_finish().expect("trace active");
            let path = dir.join(format!("{name}.json"));
            data.write_chrome(&path)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            obs::progress(&format!(
                "[run_all] trace {} ({} events) -> {}",
                data.trace_id,
                data.events.len(),
                path.display()
            ));
        }
        bench::setup::emit(name, &tables)?;
        all.extend(tables);
    }
    let md: String = all
        .iter()
        .map(|t| format!("{}\n", t.to_markdown()))
        .collect();
    let results = std::path::Path::new("results");
    std::fs::create_dir_all(results)
        .map_err(|e| format!("cannot create {}: {e}", results.display()))?;
    let md_path = results.join("experiments_output.md");
    std::fs::write(&md_path, md).map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
    obs::progress(&format!("[run_all] wrote {}", md_path.display()));

    let metrics_path = results.join("metrics.json");
    obs::write_json(&metrics_path)
        .map_err(|e| format!("cannot write {}: {e}", metrics_path.display()))?;
    let metrics_md_path = results.join("metrics.md");
    std::fs::write(&metrics_md_path, obs::snapshot().to_markdown())
        .map_err(|e| format!("cannot write {}: {e}", metrics_md_path.display()))?;
    obs::progress(&format!(
        "[run_all] wrote {} and {}",
        metrics_path.display(),
        metrics_md_path.display()
    ));
    Ok(())
}
