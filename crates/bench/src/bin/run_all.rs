//! Runs every experiment on one shared setup and writes all result
//! tables to `results/` (plus `results/experiments_output.md`).
fn main() {
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    let mut all = Vec::new();
    for (name, tables) in [
        ("testbed_stats", bench::testbed_stats(&setup)),
        ("fig5_1", bench::fig5_1(&setup)),
        ("fig5_2", bench::fig5_2(&setup)),
        ("fig5_3", bench::fig5_3(&setup)),
        ("fig5_4", bench::fig5_4(&setup)),
        ("fig5_5", bench::fig5_5(&setup)),
        ("fig5_6", bench::fig5_6(&setup)),
        ("fig5_7", bench::fig5_7(&setup)),
        ("baseline_vs_context", bench::baseline_vs_context(&setup)),
        ("related_gopubmed", bench::related_gopubmed(&setup)),
        ("sparsity_analysis", bench::sparsity_analysis(&setup)),
        ("ablations", bench::ablations(&setup)),
    ] {
        eprintln!("[run_all] {name}");
        bench::setup::emit(name, &tables);
        all.extend(tables);
    }
    let md: String = all
        .iter()
        .map(|t| format!("{}\n", t.to_markdown()))
        .collect();
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/experiments_output.md", md);
    eprintln!("[run_all] wrote results/experiments_output.md");
}
