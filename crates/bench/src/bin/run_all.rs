//! Runs every experiment on one shared setup and writes all result
//! tables to `results/` (plus `results/experiments_output.md` and the
//! telemetry snapshot `results/metrics.json`).

use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[run_all] error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    obs::enable();
    let config = bench::ExpConfig::from_args();
    let setup = bench::Setup::build(config);
    let mut all = Vec::new();
    for (name, tables) in [
        ("testbed_stats", bench::testbed_stats(&setup)),
        ("fig5_1", bench::fig5_1(&setup)),
        ("fig5_2", bench::fig5_2(&setup)),
        ("fig5_3", bench::fig5_3(&setup)),
        ("fig5_4", bench::fig5_4(&setup)),
        ("fig5_5", bench::fig5_5(&setup)),
        ("fig5_6", bench::fig5_6(&setup)),
        ("fig5_7", bench::fig5_7(&setup)),
        ("baseline_vs_context", bench::baseline_vs_context(&setup)),
        ("related_gopubmed", bench::related_gopubmed(&setup)),
        ("sparsity_analysis", bench::sparsity_analysis(&setup)),
        ("ablations", bench::ablations(&setup)),
    ] {
        obs::progress(&format!("[run_all] {name}"));
        bench::setup::emit(name, &tables)?;
        all.extend(tables);
    }
    let md: String = all
        .iter()
        .map(|t| format!("{}\n", t.to_markdown()))
        .collect();
    let results = std::path::Path::new("results");
    std::fs::create_dir_all(results)
        .map_err(|e| format!("cannot create {}: {e}", results.display()))?;
    let md_path = results.join("experiments_output.md");
    std::fs::write(&md_path, md).map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
    obs::progress(&format!("[run_all] wrote {}", md_path.display()));

    let metrics_path = results.join("metrics.json");
    obs::write_json(&metrics_path)
        .map_err(|e| format!("cannot write {}: {e}", metrics_path.display()))?;
    let metrics_md_path = results.join("metrics.md");
    std::fs::write(&metrics_md_path, obs::snapshot().to_markdown())
        .map_err(|e| format!("cannot write {}: {e}", metrics_md_path.display()))?;
    obs::progress(&format!(
        "[run_all] wrote {} and {}",
        metrics_path.display(),
        metrics_md_path.display()
    ));
    Ok(())
}
