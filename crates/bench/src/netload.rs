//! Network load driver: PR 5's harness pointed at a real socket.
//!
//! [`run_network`] drives `POST /v1/search` against a running
//! `litsearch serve` instance with the same closed/open-loop worker
//! model as [`crate::load`], recording *client-observed* latency into
//! the `serve.http.request` rolling series (open-loop arrivals anchor
//! latency at the scheduled arrival time, so queue delay on the server
//! counts — no coordinated omission). `429` deadline sheds are tallied
//! separately under `serve.http.shed`: a shed is the server keeping
//! its latency promise, not a failure, but a *nominal-load* run should
//! shed nothing (CI's serve-smoke gates on exactly that).
//!
//! [`overload_compare`] is the deterministic loopback complement: an
//! event-driven queueing model (same admission/shedding arithmetic as
//! `serve::server`, same per-query service costs as the `--sim` load
//! path) that contrasts a shedding configuration with an
//! unbounded-queue control under 2× overload. Its verdict — shedding
//! keeps served-request p99 inside the deadline, unbounded queueing
//! does not — is asserted by CI without needing a second live server.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use obs::SloSpec;
use serde::Value;

use crate::load::{sim_cost_ns, LoadHarness, LoadReport, LoopMode};
use context_search::{ContextSetKind, ScoreFunction, Searcher};

/// Serving objectives for the wire path: p99 of client-observed
/// `serve.http.request` latency under the threshold, and 99.9%
/// non-error responses.
pub fn network_serve_slos(latency_threshold_ns: u64) -> Vec<SloSpec> {
    vec![
        SloSpec::latency(
            "serve-http-latency-p99",
            "serve.http.request",
            latency_threshold_ns,
            0.99,
        ),
        SloSpec::availability("serve-http-availability", "serve.http.request", 0.999),
    ]
}

/// A [`LoadReport`] plus wire-only tallies.
pub struct NetLoadReport {
    /// The harness report (windows, SLOs, slow queries).
    pub report: LoadReport,
    /// The target that was driven.
    pub target: String,
    /// `429` deadline sheds observed (counted separately from errors).
    pub shed: u64,
    /// `503` queue-full rejections observed.
    pub rejected: u64,
    /// Connect/read/write failures (these *do* count as errors).
    pub transport_errors: u64,
}

impl NetLoadReport {
    /// JSON object form: the load report with wire tallies appended.
    pub fn to_value(&self) -> Value {
        let mut value = self.report.to_value();
        if let Value::Map(fields) = &mut value {
            fields.push(("target".to_string(), Value::Str(self.target.clone())));
            fields.push(("shed".to_string(), Value::UInt(self.shed)));
            fields.push(("rejected".to_string(), Value::UInt(self.rejected)));
            fields.push((
                "transport_errors".to_string(),
                Value::UInt(self.transport_errors),
            ));
        }
        value
    }

    /// Pretty JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("report serializes")
    }

    /// Terminal dashboard: the harness rendering plus a wire footer.
    pub fn render_dashboard(&self) -> String {
        let mut out = self.report.render_dashboard();
        out.push_str(&format!(
            "\nwire: target {}  shed(429) {}  rejected(503) {}  transport_errors {}\n",
            self.target, self.shed, self.rejected, self.transport_errors
        ));
        out
    }
}

/// `http://host:port` (or bare `host:port`) → `host:port`.
fn host_port(target: &str) -> Result<String, String> {
    let stripped = target
        .strip_prefix("http://")
        .unwrap_or(target)
        .trim_end_matches('/');
    if stripped.is_empty() || !stripped.contains(':') {
        return Err(format!("target {target:?} must look like http://HOST:PORT"));
    }
    Ok(stripped.to_string())
}

fn kind_name(kind: ContextSetKind) -> &'static str {
    kind.name()
}

fn function_name(function: ScoreFunction) -> &'static str {
    function.name()
}

/// Build the `/v1/search` request bytes for one query.
fn search_request(
    host: &str,
    query: &str,
    kind: ContextSetKind,
    function: ScoreFunction,
    limit: usize,
) -> Vec<u8> {
    let body = serde_json::to_string(&Value::Map(vec![
        ("query".to_string(), Value::Str(query.to_string())),
        ("kind".to_string(), Value::Str(kind_name(kind).to_string())),
        (
            "function".to_string(),
            Value::Str(function_name(function).to_string()),
        ),
        ("limit".to_string(), Value::UInt(limit as u64)),
    ]))
    .expect("request body serializes");
    let mut bytes = format!(
        "POST /v1/search HTTP/1.1\r\nhost: {host}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Read one `content-length`-framed response. Returns the status code
/// and whether the server asked to close the connection.
fn read_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> Result<(u16, bool), String> {
    scratch.clear();
    let mut chunk = [0u8; 8192];
    let head_end = loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if scratch.len() > 64 * 1024 {
            return Err("response head too large".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-response".to_string()),
            Ok(n) => scratch.extend_from_slice(&chunk[..n]),
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                continue
            }
            Err(err) => return Err(format!("read failed: {err}")),
        }
    };
    let head = std::str::from_utf8(&scratch[..head_end])
        .map_err(|_| "response head not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length {value:?}"))?;
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let total = head_end + 4 + content_length;
    while scratch.len() < total {
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".to_string()),
            Ok(n) => scratch.extend_from_slice(&chunk[..n]),
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                continue
            }
            Err(err) => return Err(format!("read failed: {err}")),
        }
    }
    scratch.drain(..total);
    Ok((status, close))
}

/// Drive the harness's configured workload over real sockets. The
/// harness must be built with `sim = false` and network SLOs (see
/// [`network_serve_slos`]); `target` looks like `http://127.0.0.1:port`.
pub fn run_network(
    harness: &LoadHarness,
    target: &str,
    queries: &[String],
) -> Result<NetLoadReport, String> {
    if queries.is_empty() {
        return Err("network load run needs at least one query".to_string());
    }
    let cfg = harness.config();
    if cfg.sim {
        return Err("network mode drives a live server; drop --sim or drop --target".to_string());
    }
    let host = host_port(target)?;
    let threads = cfg.threads.max(1);
    let clock = harness.clock().clone();
    let rolling = harness.rolling().clone();
    let slowlog = harness.slowlog().clone();

    let total_queries = AtomicU64::new(0);
    let total_errors = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let transport_errors = AtomicU64::new(0);
    let start_ns = clock.now_ns();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let host = host.as_str();
            let clock = &clock;
            let rolling = &rolling;
            let slowlog = &slowlog;
            let total_queries = &total_queries;
            let total_errors = &total_errors;
            let shed = &shed;
            let rejected = &rejected;
            let transport_errors = &transport_errors;
            scope.spawn(move || {
                let mut conn: Option<TcpStream> = None;
                let mut scratch: Vec<u8> = Vec::with_capacity(8192);
                for i in 0..cfg.queries_per_thread {
                    let query = &queries[(w * cfg.queries_per_thread + i) % queries.len()];
                    let request = search_request(host, query, cfg.kind, cfg.function, cfg.limit);

                    // Open loop: latency anchors at the scheduled
                    // arrival, not at send — queue delay counts.
                    let anchor_ns = match cfg.mode {
                        LoopMode::Closed => clock.now_ns(),
                        LoopMode::Open { qps_per_worker } => {
                            let arrival_ns = start_ns
                                + ((i as f64) * 1e9 / qps_per_worker.max(0.000_001)) as u64;
                            let now = clock.now_ns();
                            if arrival_ns > now {
                                std::thread::sleep(Duration::from_nanos(arrival_ns - now));
                            }
                            arrival_ns
                        }
                    };

                    let outcome = (|| -> Result<u16, String> {
                        for attempt in 0..2 {
                            let stream = match conn.as_mut() {
                                Some(stream) => stream,
                                None => {
                                    let fresh = TcpStream::connect(host)
                                        .map_err(|err| format!("connect {host}: {err}"))?;
                                    let _ = fresh.set_nodelay(true);
                                    let _ =
                                        fresh.set_read_timeout(Some(Duration::from_millis(100)));
                                    conn.insert(fresh)
                                }
                            };
                            let sent = stream.write_all(&request);
                            let got = match sent {
                                Ok(()) => read_response(stream, &mut scratch),
                                Err(err) => Err(format!("write failed: {err}")),
                            };
                            match got {
                                Ok((status, close)) => {
                                    if close {
                                        conn = None;
                                        scratch.clear();
                                    }
                                    return Ok(status);
                                }
                                Err(err) => {
                                    // Stale keep-alive sockets die on
                                    // first use; retry once on a fresh
                                    // connection.
                                    conn = None;
                                    scratch.clear();
                                    if attempt == 1 {
                                        return Err(err);
                                    }
                                }
                            }
                        }
                        Err("unreachable: retry loop returned".to_string())
                    })();

                    let completion_ns = clock.now_ns();
                    let latency_ns = completion_ns.saturating_sub(anchor_ns);
                    total_queries.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok(429) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            rolling.record_at(
                                w,
                                "serve.http.shed",
                                completion_ns,
                                latency_ns,
                                false,
                            );
                        }
                        Ok(503) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            rolling.record_at(
                                w,
                                "serve.http.shed",
                                completion_ns,
                                latency_ns,
                                false,
                            );
                        }
                        Ok(status) => {
                            let error = status >= 400;
                            if error {
                                total_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            rolling.record_at(
                                w,
                                "serve.http.request",
                                completion_ns,
                                latency_ns,
                                error,
                            );
                            if slowlog.is_slow(latency_ns) {
                                slowlog.push(obs::SlowQuery {
                                    query: query.clone(),
                                    duration_ns: latency_ns,
                                    ts_ns: completion_ns,
                                    stats: vec![("status".to_string(), u64::from(status))],
                                    trace: None,
                                });
                            }
                        }
                        Err(_) => {
                            transport_errors.fetch_add(1, Ordering::Relaxed);
                            total_errors.fetch_add(1, Ordering::Relaxed);
                            rolling.record_at(
                                w,
                                "serve.http.request",
                                completion_ns,
                                latency_ns,
                                true,
                            );
                        }
                    }
                }
            });
        }
    });

    let report = harness.report_at(
        clock.now_ns(),
        total_queries.load(Ordering::Relaxed),
        total_errors.load(Ordering::Relaxed),
    );
    Ok(NetLoadReport {
        report,
        target: target.to_string(),
        shed: shed.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        transport_errors: transport_errors.load(Ordering::Relaxed),
    })
}

// ---------------------------------------------------------------------------
// Deterministic overload comparison
// ---------------------------------------------------------------------------

/// One modeled server configuration for [`overload_compare`].
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Worker threads in the model.
    pub workers: usize,
    /// Admission-queue depth bound (`0` = unbounded).
    pub queue_depth: usize,
    /// Per-request deadline, nanoseconds, anchored at arrival.
    pub deadline_ns: u64,
    /// Whether the model sheds requests that cannot finish in budget.
    pub shed: bool,
    /// Arrival rate as a multiple of the model's service capacity.
    pub overload_factor: f64,
    /// Total arrivals simulated.
    pub n_requests: usize,
    /// Fixed per-request dispatch overhead, nanoseconds.
    pub dispatch_overhead_ns: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            deadline_ns: 50_000_000,
            shed: true,
            overload_factor: 2.0,
            n_requests: 4_000,
            dispatch_overhead_ns: 50_000,
        }
    }
}

/// What one modeled configuration did under the arrival schedule.
#[derive(Debug, Clone)]
pub struct OverloadOutcome {
    /// Requests that executed and produced results.
    pub served: u64,
    /// 429-style deadline sheds.
    pub shed_deadline: u64,
    /// 503-style queue-overflow rejections.
    pub shed_queue_full: u64,
    /// Served-request latency percentiles, nanoseconds.
    pub p50_ns: u64,
    /// p99 of served-request latency, nanoseconds.
    pub p99_ns: u64,
    /// Worst served-request latency, nanoseconds.
    pub max_ns: u64,
}

impl OverloadOutcome {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("served".to_string(), Value::UInt(self.served)),
            ("shed_deadline".to_string(), Value::UInt(self.shed_deadline)),
            (
                "shed_queue_full".to_string(),
                Value::UInt(self.shed_queue_full),
            ),
            ("p50_ns".to_string(), Value::UInt(self.p50_ns)),
            ("p99_ns".to_string(), Value::UInt(self.p99_ns)),
            ("max_ns".to_string(), Value::UInt(self.max_ns)),
        ])
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Event-driven FIFO queue model: `workers` servers, bounded queue,
/// deadline shedding at dispatch (using the *actual* service time as
/// the cost estimate — an idealized EWMA). Deterministic: service
/// times come in as data, arrivals are evenly spaced at
/// `overload_factor ×` the modeled capacity.
pub fn simulate_overload(service_ns: &[u64], cfg: &OverloadConfig) -> OverloadOutcome {
    let workers = cfg.workers.max(1);
    let n = cfg.n_requests.max(1);
    if service_ns.is_empty() {
        return OverloadOutcome {
            served: 0,
            shed_deadline: 0,
            shed_queue_full: 0,
            p50_ns: 0,
            p99_ns: 0,
            max_ns: 0,
        };
    }
    let mean_service = (service_ns.iter().sum::<u64>() / service_ns.len().max(1) as u64).max(1)
        + cfg.dispatch_overhead_ns;
    // capacity (q/s) = workers / mean_service; arrivals at factor ×.
    let interval_ns =
        ((mean_service as f64 / workers as f64) / cfg.overload_factor.max(0.01)) as u64;

    // Earliest-free worker pool as a sorted vec (workers is small).
    let mut free_at: Vec<u64> = vec![0; workers];
    let mut queued: VecDeque<(u64, u64)> = VecDeque::new(); // (arrival, service)
    let mut latencies: Vec<u64> = Vec::with_capacity(n);
    let mut shed_deadline = 0u64;
    let mut shed_queue_full = 0u64;

    let mut dispatch = |arrival: u64, service: u64, start: u64, free_slot: &mut u64| {
        let wait = start.saturating_sub(arrival);
        let cost = cfg.dispatch_overhead_ns + service;
        if cfg.shed && cfg.deadline_ns > 0 && wait.saturating_add(cost) > cfg.deadline_ns {
            // Shed: the worker only pays the rejection write.
            shed_deadline += 1;
            *free_slot = start + cfg.dispatch_overhead_ns;
        } else {
            let finish = start + cost;
            latencies.push(finish - arrival);
            *free_slot = finish;
        }
    };

    for i in 0..n {
        let arrival = i as u64 * interval_ns;
        let service = service_ns[i % service_ns.len().max(1)];
        // Dispatch every queued request whose worker frees before this
        // arrival.
        while let Some(slot) = free_at.iter().position(|&f| f <= arrival) {
            let Some((qa, qs)) = queued.pop_front() else {
                break;
            };
            let start = free_at[slot].max(qa);
            dispatch(qa, qs, start, &mut free_at[slot]);
        }
        if cfg.queue_depth > 0 && queued.len() >= cfg.queue_depth {
            shed_queue_full += 1;
            continue;
        }
        queued.push_back((arrival, service));
    }
    // Drain the tail.
    while let Some((qa, qs)) = queued.pop_front() {
        let slot = free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .map(|(idx, _)| idx)
            .unwrap_or(0);
        let start = free_at[slot].max(qa);
        dispatch(qa, qs, start, &mut free_at[slot]);
    }

    latencies.sort_unstable();
    OverloadOutcome {
        served: latencies.len() as u64,
        shed_deadline,
        shed_queue_full,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        max_ns: percentile(&latencies, 1.0),
    }
}

/// The acceptance-criterion comparison: the same arrival schedule and
/// service costs through (a) the shedding configuration and (b) an
/// unbounded-queue, no-shedding control. Returns the JSON verdict;
/// `pass` requires the shedding run to keep served-request p99 within
/// the deadline while the control run blows through it.
pub fn overload_compare(service_ns: &[u64], cfg: &OverloadConfig) -> Value {
    let shedding = simulate_overload(service_ns, cfg);
    let control = OverloadConfig {
        shed: false,
        queue_depth: 0,
        ..*cfg
    };
    let unbounded = simulate_overload(service_ns, &control);
    let pass = shedding.served > 0
        && shedding.p99_ns <= cfg.deadline_ns
        && unbounded.p99_ns > cfg.deadline_ns;
    Value::Map(vec![
        ("workers".to_string(), Value::UInt(cfg.workers as u64)),
        (
            "queue_depth".to_string(),
            Value::UInt(cfg.queue_depth as u64),
        ),
        ("deadline_ns".to_string(), Value::UInt(cfg.deadline_ns)),
        (
            "overload_factor".to_string(),
            Value::Float(cfg.overload_factor),
        ),
        ("n_requests".to_string(), Value::UInt(cfg.n_requests as u64)),
        ("shedding".to_string(), shedding.to_value()),
        ("unbounded".to_string(), unbounded.to_value()),
        ("pass".to_string(), Value::Bool(pass)),
    ])
}

/// Per-query service costs for the overload model, derived from real
/// query stats exactly like the `--sim` load path does.
pub fn service_costs(
    searcher: &Searcher,
    queries: &[String],
    kind: ContextSetKind,
    function: ScoreFunction,
    limit: usize,
) -> Vec<u64> {
    queries
        .iter()
        .filter_map(|q| {
            searcher
                .query_with_stats(q, kind, function, limit)
                .ok()
                .map(|(_, stats)| sim_cost_ns(&stats))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_port_accepts_http_prefix() {
        assert_eq!(
            host_port("http://127.0.0.1:8080").unwrap(),
            "127.0.0.1:8080"
        );
        assert_eq!(host_port("127.0.0.1:9/").unwrap(), "127.0.0.1:9");
        assert!(host_port("http://nohostport").is_err());
    }

    #[test]
    fn shedding_beats_unbounded_queueing_at_2x_overload() {
        // Uniform 1 ms service cost, 2× overload, 50 ms deadline.
        let service: Vec<u64> = vec![1_000_000; 16];
        let cfg = OverloadConfig::default();
        let verdict = overload_compare(&service, &cfg);
        let pass = matches!(verdict.get("pass"), Some(Value::Bool(true)));
        let shed_p99 = verdict
            .get("shedding")
            .and_then(|s| s.get("p99_ns"))
            .and_then(Value::as_f64)
            .unwrap() as u64;
        let unbounded_p99 = verdict
            .get("unbounded")
            .and_then(|s| s.get("p99_ns"))
            .and_then(Value::as_f64)
            .unwrap() as u64;
        assert!(
            pass,
            "expected shedding p99 {shed_p99} <= {} < unbounded p99 {unbounded_p99}",
            cfg.deadline_ns
        );
        assert!(shed_p99 <= cfg.deadline_ns && unbounded_p99 > cfg.deadline_ns);
    }

    #[test]
    fn overload_verdict_is_deterministic() {
        let service: Vec<u64> = (0..32).map(|i| 500_000 + i * 37_000).collect();
        let cfg = OverloadConfig::default();
        let a = serde_json::to_string(&overload_compare(&service, &cfg)).unwrap();
        let b = serde_json::to_string(&overload_compare(&service, &cfg)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unbounded_control_serves_everything_eventually() {
        let service: Vec<u64> = vec![2_000_000; 8];
        let cfg = OverloadConfig {
            shed: false,
            queue_depth: 0,
            n_requests: 500,
            ..OverloadConfig::default()
        };
        let outcome = simulate_overload(&service, &cfg);
        assert_eq!(outcome.served, 500);
        assert_eq!(outcome.shed_deadline + outcome.shed_queue_full, 0);
    }
}
