//! Experiment configuration and the shared prepared state every figure
//! binary starts from.

use context_search::{
    ContextPaperSets, ContextSetKind, EngineConfig, EngineSnapshot, PrestigeScores, ScoreFunction,
    Searcher,
};
use corpus::queries::{generate_queries, EvalQuery, QueryConfig};
use corpus::{generate_corpus, CorpusConfig};
use ontology::{generate_ontology, GeneratorConfig};
use std::time::Instant;

/// Scale and sweep parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Ontology size.
    pub n_terms: usize,
    /// Corpus size.
    pub n_papers: usize,
    /// Number of evaluation queries.
    pub n_queries: usize,
    /// Master seed.
    pub seed: u64,
    /// Contexts below this size are excluded from experiment
    /// populations (the paper drops ≤ 100 at 72k-paper scale).
    pub min_context_size: usize,
    /// Relevancy thresholds for the precision figures.
    pub thresholds: Vec<f64>,
    /// Context levels reported in the per-level figures.
    pub levels: Vec<u32>,
    /// Top-k percentages for the overlap figure.
    pub k_pcts: Vec<f64>,
    /// When set, `run_all` captures one Chrome-format trace per
    /// experiment into this directory (`<dir>/<experiment>.json`).
    pub trace_dir: Option<std::path::PathBuf>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            n_terms: 800,
            n_papers: 8_000,
            n_queries: 120,
            seed: 2007,
            min_context_size: 30,
            thresholds: (0..=10).map(|i| i as f64 * 0.05).collect(),
            levels: vec![3, 5, 7],
            k_pcts: vec![0.05, 0.10, 0.15, 0.20],
            trace_dir: None,
        }
    }
}

impl ExpConfig {
    /// Parse CLI args: `--paper-scale`, `--terms N`, `--papers N`,
    /// `--queries N`, `--seed N`, `--min-context N`, `--quick`,
    /// `--trace-dir DIR`.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--paper-scale" => {
                    cfg.n_terms = 2_000;
                    cfg.n_papers = 72_027;
                    cfg.min_context_size = 100;
                }
                "--quick" => {
                    cfg.n_terms = 200;
                    cfg.n_papers = 1_500;
                    cfg.n_queries = 40;
                    cfg.min_context_size = 10;
                }
                "--terms" => {
                    i += 1;
                    cfg.n_terms = args[i].parse().expect("--terms N");
                }
                "--papers" => {
                    i += 1;
                    cfg.n_papers = args[i].parse().expect("--papers N");
                }
                "--queries" => {
                    i += 1;
                    cfg.n_queries = args[i].parse().expect("--queries N");
                }
                "--seed" => {
                    i += 1;
                    cfg.seed = args[i].parse().expect("--seed N");
                }
                "--min-context" => {
                    i += 1;
                    cfg.min_context_size = args[i].parse().expect("--min-context N");
                }
                "--trace-dir" => {
                    i += 1;
                    cfg.trace_dir = Some(std::path::PathBuf::from(&args[i]));
                }
                other => panic!("unknown flag {other}"),
            }
            i += 1;
        }
        cfg
    }
}

/// Fully prepared experiment state: a lock-free [`Searcher`] over the
/// prepared snapshot, both §4 context paper sets, prestige under every
/// function, and the evaluation queries.
pub struct Setup {
    /// The configuration used.
    pub config: ExpConfig,
    /// Lock-free query handle over the prepared snapshot (which owns
    /// ontology + corpus + indexes + all prepared tables).
    pub searcher: Searcher,
    /// Text-based context paper set (§4).
    pub text_sets: ContextPaperSets,
    /// Pattern-based context paper set (§4).
    pub pattern_sets: ContextPaperSets,
    /// Text prestige on the text-based set.
    pub text_on_text: PrestigeScores,
    /// Citation prestige on the text-based set.
    pub citation_on_text: PrestigeScores,
    /// Pattern prestige (simplified) on the pattern-based set.
    pub pattern_on_pattern: PrestigeScores,
    /// Citation prestige on the pattern-based set.
    pub citation_on_pattern: PrestigeScores,
    /// Text prestige on the pattern-based set — only for contexts with
    /// a representative paper, as in the paper's Fig 5.3 setup.
    pub text_on_pattern: PrestigeScores,
    /// Evaluation queries with ground-truth term mappings.
    pub queries: Vec<EvalQuery>,
}

impl Setup {
    /// Build everything, logging wall-clock per stage.
    pub fn build(config: ExpConfig) -> Self {
        let t0 = Instant::now();
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: config.n_terms,
            seed: config.seed,
            ..Default::default()
        });
        let corp = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: config.n_papers,
                seed: config.seed.wrapping_add(1),
                ..Default::default()
            },
        );
        obs::progress(&format!(
            "[setup] generated {} terms / {} papers in {:.1?}",
            onto.len(),
            corp.len(),
            t0.elapsed()
        ));

        // The whole offline phase runs as one prepare plan: indexes,
        // both paper sets, pattern mining, and the five standard
        // prestige tables (including the Fig 5.3 representative-injected
        // text-on-pattern pair), with independent stages scheduled
        // concurrently under `build_threads`.
        let t = Instant::now();
        let snapshot = EngineSnapshot::prepare(onto, corp, EngineConfig::default());
        let text_sets = snapshot.sets(ContextSetKind::TextBased).clone();
        let pattern_sets = snapshot.sets(ContextSetKind::PatternBased).clone();
        obs::progress(&format!(
            "[setup] prepared snapshot ({} text / {} pattern contexts, {} prestige tables) in {:.1?}",
            text_sets.n_contexts(),
            pattern_sets.n_contexts(),
            snapshot.pairs().len(),
            t.elapsed()
        ));
        let table = |kind, function| {
            snapshot
                .prestige(kind, function)
                .expect("default prepare builds all five tables")
                .clone()
        };
        let text_on_text = table(ContextSetKind::TextBased, ScoreFunction::Text);
        let citation_on_text = table(ContextSetKind::TextBased, ScoreFunction::Citation);
        let pattern_on_pattern = table(ContextSetKind::PatternBased, ScoreFunction::Pattern);
        let citation_on_pattern = table(ContextSetKind::PatternBased, ScoreFunction::Citation);
        let text_on_pattern = table(ContextSetKind::PatternBased, ScoreFunction::Text);

        let queries = generate_queries(
            snapshot.ontology(),
            snapshot.corpus(),
            &QueryConfig {
                n_queries: config.n_queries,
                seed: config.seed.wrapping_add(2),
                ..Default::default()
            },
        );
        obs::progress(&format!(
            "[setup] {} queries; total setup {:.1?}",
            queries.len(),
            t0.elapsed()
        ));

        Self {
            config,
            searcher: snapshot.searcher(),
            text_sets,
            pattern_sets,
            text_on_text,
            citation_on_text,
            pattern_on_pattern,
            citation_on_pattern,
            text_on_pattern,
            queries,
        }
    }

    /// Contexts of a set at an (approximate) level, meeting the minimum
    /// size. If the generated ontology is shallower than the requested
    /// level, the deepest available level substitutes (reported as-is).
    pub fn contexts_at_level(
        &self,
        sets: &ContextPaperSets,
        level: u32,
    ) -> Vec<context_search::ContextId> {
        let max = self.searcher.ontology().max_level();
        let level = level.min(max);
        sets.contexts_with_min_size(self.config.min_context_size)
            .into_iter()
            .filter(|&c| self.searcher.ontology().level(c) == level)
            .collect()
    }
}

/// Write `content` to `path`, naming the file in the error.
fn write_file(path: &std::path::Path, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Write a set of result tables to `results/<name>.md` (+ `.json`) and
/// print the markdown to stdout. I/O failures (missing permissions, a
/// full disk, `results/` shadowed by a file) are reported with the
/// offending path instead of silently dropping experiment output.
pub fn emit(name: &str, tables: &[eval::report::Table]) -> Result<(), String> {
    let mut md = String::new();
    for t in tables {
        md.push_str(&t.to_markdown());
        md.push('\n');
    }
    println!("{md}");
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    write_file(&dir.join(format!("{name}.md")), &md)?;
    let json: Vec<serde_json::Value> = tables
        .iter()
        .map(|t| serde_json::from_str(&t.to_json()).expect("valid json"))
        .collect();
    write_file(
        &dir.join(format!("{name}.json")),
        &serde_json::to_string_pretty(&json).expect("serializes"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro() -> ExpConfig {
        ExpConfig {
            n_terms: 60,
            n_papers: 150,
            n_queries: 8,
            seed: 5,
            min_context_size: 5,
            levels: vec![2, 3],
            ..Default::default()
        }
    }

    #[test]
    fn setup_builds_all_prestige_variants() {
        let setup = Setup::build(micro());
        assert_eq!(setup.searcher.corpus().len(), 150);
        assert!(setup.text_sets.n_contexts() > 0);
        assert!(setup.pattern_sets.n_contexts() > 0);
        assert!(setup.text_on_text.contexts().count() > 0);
        assert!(setup.citation_on_text.contexts().count() > 0);
        assert!(setup.pattern_on_pattern.contexts().count() > 0);
        assert!(setup.citation_on_pattern.contexts().count() > 0);
        assert!(!setup.queries.is_empty());
    }

    #[test]
    fn every_experiment_produces_tables() {
        let setup = Setup::build(micro());
        for (name, tables) in [
            ("fig5_1", crate::fig5_1(&setup)),
            ("fig5_2", crate::fig5_2(&setup)),
            ("fig5_3", crate::fig5_3(&setup)),
            ("fig5_4", crate::fig5_4(&setup)),
            ("fig5_5", crate::fig5_5(&setup)),
            ("fig5_6", crate::fig5_6(&setup)),
            ("fig5_7", crate::fig5_7(&setup)),
            ("baseline", crate::baseline_vs_context(&setup)),
            ("gopubmed", crate::related_gopubmed(&setup)),
            ("stats", crate::testbed_stats(&setup)),
        ] {
            assert!(!tables.is_empty(), "{name} returned no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{name} table {:?} empty", t.title);
                let md = t.to_markdown();
                assert!(md.starts_with("### "), "{name} markdown malformed");
                let _ = t.to_json();
            }
        }
    }

    #[test]
    fn contexts_at_level_clamps_to_max_level() {
        let setup = Setup::build(micro());
        let deep = setup.contexts_at_level(&setup.pattern_sets, 99);
        let max = setup.searcher.ontology().max_level();
        for c in deep {
            assert_eq!(setup.searcher.ontology().level(c), max);
        }
    }
}
