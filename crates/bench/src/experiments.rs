//! The per-figure experiment implementations (paper §5).

use crate::setup::Setup;
use context_search::prestige::citation::{citation_prestige, hits_citation_prestige};
use context_search::prestige::pattern::pattern_prestige;
use context_search::{ContextPaperSets, PrestigeScores, ScoreFunction};
use eval::report::Table;
use eval::{
    mean, precision, precision_curve, recall, sd_histogram, separability_sd, top_k_percent_overlap,
    PrecisionCurves,
};
use std::collections::HashSet;

/// Scored query output as `(paper id, relevancy)` pairs.
fn run_query(
    setup: &Setup,
    sets: &ContextPaperSets,
    prestige: &PrestigeScores,
    query: &str,
) -> Vec<(u32, f64)> {
    setup
        .searcher
        .search(query, sets, prestige, 0)
        .into_iter()
        .map(|h| (h.paper.0, h.relevancy))
        .collect()
}

/// Average + median precision curves for one (paper set, function).
fn precision_curves(
    setup: &Setup,
    sets: &ContextPaperSets,
    prestige: &PrestigeScores,
) -> PrecisionCurves {
    let thresholds = &setup.config.thresholds;
    let mut per_query: Vec<Vec<f64>> = Vec::new();
    for q in &setup.queries {
        let truth: HashSet<u32> = setup
            .searcher
            .ac_answer_set(&q.text)
            .into_iter()
            .map(|p| p.0)
            .collect();
        if truth.is_empty() {
            continue;
        }
        let scored = run_query(setup, sets, prestige, &q.text);
        per_query.push(precision_curve(&scored, &truth, thresholds));
    }
    PrecisionCurves::aggregate(thresholds, &per_query)
}

fn precision_figure(
    setup: &Setup,
    title: &str,
    sets: &ContextPaperSets,
    functions: &[(&str, &PrestigeScores)],
) -> Table {
    let mut columns = vec!["threshold t".to_string()];
    for (name, _) in functions {
        columns.push(format!("{name} avg"));
        columns.push(format!("{name} median"));
    }
    let mut table = Table::new(
        title,
        &columns.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let curves: Vec<PrecisionCurves> = functions
        .iter()
        .map(|(_, p)| precision_curves(setup, sets, p))
        .collect();
    for (i, &t) in setup.config.thresholds.iter().enumerate() {
        let mut row = vec![format!("{t:.2}")];
        for c in &curves {
            row.push(format!("{:.3}", c.average[i]));
            row.push(format!("{:.3}", c.median[i]));
        }
        table.push_row(row);
    }
    table
}

/// Fig 5.1 — precision vs relevancy threshold on the **text-based**
/// context paper set: text-based vs citation-based prestige.
pub fn fig5_1(setup: &Setup) -> Vec<Table> {
    vec![precision_figure(
        setup,
        "Fig 5.1 — precision, text-based context paper set (text vs citation prestige)",
        &setup.text_sets,
        &[
            ("text", &setup.text_on_text),
            ("citation", &setup.citation_on_text),
        ],
    )]
}

/// Fig 5.2 — precision vs relevancy threshold on the **pattern-based**
/// context paper set: pattern-based vs citation-based prestige.
pub fn fig5_2(setup: &Setup) -> Vec<Table> {
    vec![precision_figure(
        setup,
        "Fig 5.2 — precision, pattern-based context paper set (pattern vs citation prestige)",
        &setup.pattern_sets,
        &[
            ("pattern", &setup.pattern_on_pattern),
            ("citation", &setup.citation_on_pattern),
        ],
    )]
}

/// Fig 5.3 — average top-k% overlapping ratio per context level for the
/// three function pairs, on the pattern-based paper set (text scores
/// restricted to contexts with representatives, as in the paper).
pub fn fig5_3(setup: &Setup) -> Vec<Table> {
    let pairs: [(&str, &PrestigeScores, &PrestigeScores); 3] = [
        (
            "text-citation",
            &setup.text_on_pattern,
            &setup.citation_on_pattern,
        ),
        (
            "text-pattern",
            &setup.text_on_pattern,
            &setup.pattern_on_pattern,
        ),
        (
            "citation-pattern",
            &setup.citation_on_pattern,
            &setup.pattern_on_pattern,
        ),
    ];
    let mut tables = Vec::new();
    for (pair_name, fa, fb) in pairs {
        let mut columns = vec!["level".to_string()];
        for &pct in &setup.config.k_pcts {
            columns.push(format!("k={:.0}%", pct * 100.0));
        }
        columns.push("contexts".to_string());
        let mut table = Table::new(
            format!("Fig 5.3 — avg top-k% overlapping ratio, {pair_name}"),
            &columns.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for &level in &setup.config.levels {
            let contexts = setup.contexts_at_level(&setup.pattern_sets, level);
            let mut per_k: Vec<Vec<f64>> = vec![Vec::new(); setup.config.k_pcts.len()];
            for &c in &contexts {
                let sa: Vec<(u32, f64)> = fa.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
                let sb: Vec<(u32, f64)> = fb.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
                if sa.is_empty() || sb.is_empty() {
                    continue; // text scores absent for this context
                }
                for (i, &pct) in setup.config.k_pcts.iter().enumerate() {
                    per_k[i].push(top_k_percent_overlap(&sa, &sb, pct));
                }
            }
            let mut row = vec![format!("{level}")];
            for k in &per_k {
                row.push(format!("{:.3}", mean(k)));
            }
            row.push(format!("{}", per_k[0].len()));
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

/// Per-context separability SDs for one score set, restricted to the
/// experiment population.
///
/// Following §5.2 ("scores are divided into k ranges *for each
/// context*"), each context's scores are max-normalized before binning:
/// separability measures how a function spreads the papers of one
/// context over its own score range. Tied scores (the citation
/// function's sparse-graph pathology) then collapse into a single bin
/// and receive the worst possible SD, as in the paper's Fig 5.4.
fn context_sds(
    setup: &Setup,
    sets: &ContextPaperSets,
    prestige: &PrestigeScores,
    level: Option<u32>,
) -> Vec<f64> {
    let contexts = match level {
        Some(l) => setup.contexts_at_level(sets, l),
        None => sets.contexts_with_min_size(setup.config.min_context_size),
    };
    contexts
        .into_iter()
        .filter(|&c| !prestige.scores(c).is_empty())
        .map(|c| {
            let mut values = prestige.score_values(c).to_vec();
            let max = values.iter().cloned().fold(0.0f64, f64::max);
            if max > 0.0 {
                for v in &mut values {
                    *v /= max;
                }
            }
            separability_sd(&values, 10)
        })
        .collect()
}

fn sd_histogram_table(title: &str, series: &[(&str, Vec<f64>)]) -> Table {
    let mut columns = vec!["SD ≤".to_string()];
    for (name, _) in series {
        columns.push(format!("% contexts ({name})"));
    }
    let mut table = Table::new(
        title,
        &columns.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let histos: Vec<(Vec<f64>, Vec<f64>)> = series
        .iter()
        .map(|(_, sds)| sd_histogram(sds, 5.0, 40.0))
        .collect();
    let edges = &histos[0].0;
    for (i, edge) in edges.iter().enumerate() {
        let mut row = vec![format!("{edge:.0}")];
        for (_, pct) in &histos {
            row.push(format!("{:.1}", pct[i]));
        }
        table.push_row(row);
    }
    table
}

/// Fig 5.4 — histogram of contexts by separability SD, per function,
/// for both context paper sets.
pub fn fig5_4(setup: &Setup) -> Vec<Table> {
    let text_panel = sd_histogram_table(
        "Fig 5.4a — % contexts by separability SD, text-based context paper set",
        &[
            (
                "text",
                context_sds(setup, &setup.text_sets, &setup.text_on_text, None),
            ),
            (
                "citation",
                context_sds(setup, &setup.text_sets, &setup.citation_on_text, None),
            ),
        ],
    );
    let pattern_panel = sd_histogram_table(
        "Fig 5.4b — % contexts by separability SD, pattern-based context paper set",
        &[
            (
                "text",
                context_sds(setup, &setup.pattern_sets, &setup.text_on_pattern, None),
            ),
            (
                "citation",
                context_sds(setup, &setup.pattern_sets, &setup.citation_on_pattern, None),
            ),
            (
                "pattern",
                context_sds(setup, &setup.pattern_sets, &setup.pattern_on_pattern, None),
            ),
        ],
    );
    vec![text_panel, pattern_panel]
}

fn per_level_sd_figure(
    setup: &Setup,
    title: &str,
    sets: &ContextPaperSets,
    prestige: &PrestigeScores,
) -> Table {
    let series: Vec<(String, Vec<f64>)> = setup
        .config
        .levels
        .iter()
        .map(|&l| {
            (
                format!("level {l}"),
                context_sds(setup, sets, prestige, Some(l)),
            )
        })
        .collect();
    let series_ref: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let mut t = sd_histogram_table(title, &series_ref);
    // Append mean SD per level as a summary row.
    let mut row = vec!["mean SD".to_string()];
    for (_, sds) in &series {
        row.push(format!("{:.1}", mean(sds)));
    }
    t.push_row(row);
    t
}

/// Fig 5.5 — text-based score SD distribution per context level.
pub fn fig5_5(setup: &Setup) -> Vec<Table> {
    vec![per_level_sd_figure(
        setup,
        "Fig 5.5 — score distribution per context level, text-based scores (text-based paper set)",
        &setup.text_sets,
        &setup.text_on_text,
    )]
}

/// Fig 5.6 — pattern-based score SD distribution per context level.
pub fn fig5_6(setup: &Setup) -> Vec<Table> {
    vec![per_level_sd_figure(
        setup,
        "Fig 5.6 — score distribution per context level, pattern-based scores (pattern-based paper set)",
        &setup.pattern_sets,
        &setup.pattern_on_pattern,
    )]
}

/// Fig 5.7 — citation-based score SD distribution per context level.
pub fn fig5_7(setup: &Setup) -> Vec<Table> {
    vec![per_level_sd_figure(
        setup,
        "Fig 5.7 — score distribution per context level, citation-based scores (pattern-based paper set)",
        &setup.pattern_sets,
        &setup.citation_on_pattern,
    )]
}

/// §1 headline claims: context-based search vs the keyword baseline —
/// output-size reduction and precision against the AC-answer sets.
pub fn baseline_vs_context(setup: &Setup) -> Vec<Table> {
    let mut table = Table::new(
        "Baseline comparison — keyword search vs context-based search (pattern set + pattern prestige)",
        &["metric", "keyword", "context-based"],
    );
    let (mut kw_sizes, mut ctx_sizes) = (Vec::new(), Vec::new());
    let (mut kw_prec, mut ctx_prec) = (Vec::new(), Vec::new());
    let (mut kw_rec, mut ctx_rec) = (Vec::new(), Vec::new());
    for q in &setup.queries {
        let truth: HashSet<u32> = setup
            .searcher
            .ac_answer_set(&q.text)
            .into_iter()
            .map(|p| p.0)
            .collect();
        if truth.is_empty() {
            continue;
        }
        let kw: HashSet<u32> = setup
            .searcher
            .keyword_search(&q.text, 0.10)
            .into_iter()
            .map(|(p, _)| p.0)
            .collect();
        // Same text-matching cut on both sides: the context side is
        // additionally restricted to members of the selected contexts,
        // which is where the output-size reduction comes from (§1).
        let ctx: HashSet<u32> = setup
            .searcher
            .search(&q.text, &setup.pattern_sets, &setup.pattern_on_pattern, 0)
            .into_iter()
            .filter(|h| h.matching > 0.10)
            .map(|h| h.paper.0)
            .collect();
        kw_sizes.push(kw.len() as f64);
        ctx_sizes.push(ctx.len() as f64);
        kw_prec.push(precision(&kw, &truth));
        ctx_prec.push(precision(&ctx, &truth));
        kw_rec.push(recall(&kw, &truth));
        ctx_rec.push(recall(&ctx, &truth));
    }
    table.push_numeric_row("mean output size", &[mean(&kw_sizes), mean(&ctx_sizes)]);
    table.push_numeric_row("mean precision", &[mean(&kw_prec), mean(&ctx_prec)]);
    table.push_numeric_row("mean recall", &[mean(&kw_rec), mean(&ctx_rec)]);
    let reduction = if mean(&kw_sizes) > 0.0 {
        100.0 * (1.0 - mean(&ctx_sizes) / mean(&kw_sizes))
    } else {
        0.0
    };
    table.push_row(vec![
        "output-size reduction".into(),
        "—".into(),
        format!("{reduction:.0}%"),
    ]);
    vec![table]
}

/// Sparsity analysis: the quantitative backbone of the paper's
/// explanations. For each context level, the mean isolated-node
/// fraction and edge density of the within-context citation subgraphs
/// — the paper's "citation graphs are sparse within those contexts"
/// and "as we drill down, citation graph sparseness increases".
pub fn sparsity_analysis(setup: &Setup) -> Vec<Table> {
    let engine = &setup.searcher;
    let mut t = Table::new(
        "Sparsity — within-context citation graphs per level",
        &[
            "level",
            "contexts",
            "mean size",
            "mean isolated frac",
            "mean density",
            "mean components",
        ],
    );
    for &level in &setup.config.levels {
        let contexts = setup.contexts_at_level(&setup.pattern_sets, level);
        let (mut sizes, mut iso, mut dens, mut comps) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for &c in &contexts {
            let members: Vec<u32> = setup.pattern_sets.members(c).iter().map(|p| p.0).collect();
            let (sub, _) = engine.index().graph.induced_subgraph(&members);
            let s = citegraph::graph_stats(&sub);
            sizes.push(s.n_nodes as f64);
            iso.push(s.isolated_fraction());
            dens.push(s.density);
            comps.push(s.n_components as f64);
        }
        t.push_row(vec![
            format!("{level}"),
            format!("{}", contexts.len()),
            format!("{:.1}", mean(&sizes)),
            format!("{:.3}", mean(&iso)),
            format!("{:.5}", mean(&dens)),
            format!("{:.1}", mean(&comps)),
        ]);
    }
    // Whole-corpus reference row.
    let global = citegraph::graph_stats(&engine.index().graph);
    t.push_row(vec![
        "whole corpus".into(),
        "1".into(),
        format!("{}", global.n_nodes),
        format!("{:.3}", global.isolated_fraction()),
        format!("{:.5}", global.density),
        format!("{}", global.n_components),
    ]);
    vec![t]
}

/// Related-work comparison (§6): a GoPubMed-style system categorizes
/// keyword hits under GO terms by abstract word containment, with no
/// ranking. We measure its categorization coverage (the paper reports
/// 78 % for PubMed abstracts) against context-based search's coverage
/// of the same hits via assignment membership.
pub fn related_gopubmed(setup: &Setup) -> Vec<Table> {
    use context_search::search::gopubmed::gopubmed_search;
    let engine = &setup.searcher;
    let mut coverages = Vec::new();
    let mut specific_coverages = Vec::new();
    let mut n_categories = Vec::new();
    let mut assigned_coverage = Vec::new();
    for q in setup.queries.iter().take(40) {
        let r = gopubmed_search(
            engine.ontology(),
            engine.corpus(),
            engine.index(),
            &q.text,
            0.10,
        );
        if r.n_hits == 0 {
            continue;
        }
        coverages.push(r.coverage());
        n_categories.push(r.categories.len() as f64);
        // Coverage by *specific* terms only (level ≥ 4): shallow terms
        // like the roots categorize trivially (their few name words are
        // everywhere), which is the weakness the paper points at.
        let specific_hits: std::collections::HashSet<corpus::PaperId> = r
            .categories
            .iter()
            .filter(|(c, _)| engine.ontology().level(*c) >= 4)
            .flat_map(|(_, ps)| ps.iter().copied())
            .collect();
        specific_coverages.push(specific_hits.len() as f64 / r.n_hits as f64);
        // Context-based assignment coverage of the same hits.
        let hits: Vec<corpus::PaperId> = engine
            .keyword_search(&q.text, 0.10)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let covered = hits
            .iter()
            .filter(|&&p| {
                setup
                    .pattern_sets
                    .contexts()
                    .any(|c| setup.pattern_sets.is_member(c, p))
            })
            .count();
        assigned_coverage.push(covered as f64 / hits.len() as f64);
    }
    let mut t = Table::new(
        "Related work — GoPubMed-style categorization vs context assignment",
        &["metric", "value"],
    );
    t.push_numeric_row(
        "GoPubMed-style abstract-word coverage (paper: 0.78 on PubMed)",
        &[mean(&coverages)],
    );
    t.push_numeric_row(
        "…by specific terms only (level ≥ 4)",
        &[mean(&specific_coverages)],
    );
    t.push_numeric_row("mean categories per query", &[mean(&n_categories)]);
    t.push_numeric_row(
        "context-assignment coverage of the same hits",
        &[mean(&assigned_coverage)],
    );
    vec![t]
}

/// Ablations over the design choices DESIGN.md calls out.
pub fn ablations(setup: &Setup) -> Vec<Table> {
    let mut tables = Vec::new();
    let engine = &setup.searcher;
    let population = setup
        .pattern_sets
        .contexts_with_min_size(setup.config.min_context_size);

    // 1. Teleport E1 (constant) vs E2 (mass-proportional).
    {
        let mut cfg = engine.config().clone();
        cfg.pagerank.teleport = citegraph::TeleportMode::Constant;
        let e1 = citation_prestige(&setup.pattern_sets, &engine.index().graph, &cfg);
        let e2 = &setup.citation_on_pattern;
        let mut overlaps = Vec::new();
        let mut rho = Vec::new();
        for &c in &population {
            let a: Vec<(u32, f64)> = e1.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            let b: Vec<(u32, f64)> = e2.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            if a.len() < 5 {
                continue;
            }
            overlaps.push(top_k_percent_overlap(&a, &b, 0.10));
            let va: Vec<f64> = a.iter().map(|&(_, s)| s).collect();
            let vb: Vec<f64> = b.iter().map(|&(_, s)| s).collect();
            rho.push(eval::stats::spearman(&va, &vb));
        }
        let mut t = Table::new(
            "Ablation — PageRank teleport E1 (constant) vs E2 (mass-proportional)",
            &["metric", "value"],
        );
        t.push_numeric_row("mean top-10% overlap", &[mean(&overlaps)]);
        t.push_numeric_row("mean Spearman rho", &[mean(&rho)]);
        tables.push(t);
    }

    // 2. HITS authorities vs PageRank (the paper's ref [11] found them
    // highly correlated), both on the global graph and per context.
    {
        let hits = citegraph::hits(&engine.index().graph, &citegraph::HitsConfig::default());
        let rho = eval::stats::spearman(&hits.authorities, &engine.index().global_pagerank);
        let hits_prestige =
            hits_citation_prestige(&setup.pattern_sets, &engine.index().graph, engine.config());
        let mut per_context_rho = Vec::new();
        for &c in &population {
            let a: Vec<f64> = setup
                .citation_on_pattern
                .scores(c)
                .iter()
                .map(|&(_, s)| s)
                .collect();
            let b: Vec<f64> = hits_prestige.scores(c).iter().map(|&(_, s)| s).collect();
            if a.len() >= 10 && a.len() == b.len() {
                per_context_rho.push(eval::stats::spearman(&a, &b));
            }
        }
        let mut t = Table::new(
            "Ablation — HITS authority vs PageRank correlation",
            &["metric", "value"],
        );
        t.push_numeric_row("Spearman rho (global graph)", &[rho]);
        t.push_numeric_row("mean Spearman rho (per context)", &[mean(&per_context_rho)]);
        tables.push(t);
    }

    // 3. Simplified (middle-only, §4) vs full (§3.3) pattern matching.
    {
        let full =
            engine.prestige_with_options(&setup.pattern_sets, ScoreFunction::Pattern, false, true);
        let simp = &setup.pattern_on_pattern;
        let mut overlaps = Vec::new();
        let (mut sd_full, mut sd_simp) = (Vec::new(), Vec::new());
        for &c in &population {
            let a: Vec<(u32, f64)> = full.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            let b: Vec<(u32, f64)> = simp.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            if a.len() < 5 {
                continue;
            }
            overlaps.push(top_k_percent_overlap(&a, &b, 0.10));
            sd_full.push(separability_sd(
                &a.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                10,
            ));
            sd_simp.push(separability_sd(
                &b.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                10,
            ));
        }
        let mut t = Table::new(
            "Ablation — simplified (middle-only) vs full pattern matching",
            &["metric", "value"],
        );
        t.push_numeric_row("mean top-10% overlap", &[mean(&overlaps)]);
        t.push_numeric_row("mean SD (full matching)", &[mean(&sd_full)]);
        t.push_numeric_row("mean SD (simplified)", &[mean(&sd_simp)]);
        tables.push(t);
    }

    // 4. Extended patterns (side-/middle-joined, §3.3) on vs off.
    {
        let mut cfg = engine.config().clone();
        cfg.use_extended_patterns = true;
        let pats_ext = context_search::assign::patterns_by_context(
            engine.ontology(),
            engine.corpus(),
            engine.index(),
            &cfg,
        );
        let ext = pattern_prestige(
            engine.ontology(),
            &setup.pattern_sets,
            engine.corpus(),
            engine.index(),
            &pats_ext,
            &cfg,
            false,
        );
        let mut overlaps = Vec::new();
        for &c in &population {
            let a: Vec<(u32, f64)> = ext.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            let b: Vec<(u32, f64)> = setup
                .pattern_on_pattern
                .scores(c)
                .iter()
                .map(|&(p, s)| (p.0, s))
                .collect();
            if a.len() >= 5 {
                overlaps.push(top_k_percent_overlap(&a, &b, 0.10));
            }
        }
        let mut t = Table::new(
            "Ablation — extended patterns on vs off (top-10% overlap with baseline)",
            &["metric", "value"],
        );
        t.push_numeric_row("mean top-10% overlap", &[mean(&overlaps)]);
        tables.push(t);
    }

    // 6 (§7 future work). Weighted cross-context citation
    // relationships vs the plain within-context-only function.
    {
        let weighted = engine.weighted_citation_prestige(
            &setup.pattern_sets,
            &context_search::prestige::citation_weighted::CrossContextWeights::default(),
        );
        let plain = &setup.citation_on_pattern;
        let (mut tie_plain, mut tie_weighted) = (Vec::new(), Vec::new());
        let mut overlaps = Vec::new();
        for &c in &population {
            let a: Vec<(u32, f64)> = plain.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            let b: Vec<(u32, f64)> = weighted.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            if a.len() < 5 {
                continue;
            }
            overlaps.push(top_k_percent_overlap(&a, &b, 0.10));
            let tie_frac = |v: &[(u32, f64)]| {
                let distinct: std::collections::HashSet<u64> =
                    v.iter().map(|&(_, s)| s.to_bits()).collect();
                1.0 - distinct.len() as f64 / v.len() as f64
            };
            tie_plain.push(tie_frac(&a));
            tie_weighted.push(tie_frac(&b));
        }
        let p_weighted = precision_curves(setup, &setup.pattern_sets, &weighted);
        let p_plain = precision_curves(setup, &setup.pattern_sets, plain);
        let t_idx = setup
            .config
            .thresholds
            .iter()
            .position(|&t| (t - 0.2).abs() < 1e-9)
            .unwrap_or(0);
        let mut t = Table::new(
            "Ablation — §7 weighted cross-context citations vs plain citation function",
            &["metric", "plain", "weighted"],
        );
        t.push_numeric_row(
            "mean tie fraction (score collisions)",
            &[mean(&tie_plain), mean(&tie_weighted)],
        );
        t.push_numeric_row(
            "avg precision @ t=0.2",
            &[p_plain.average[t_idx], p_weighted.average[t_idx]],
        );
        t.push_row(vec![
            "mean top-10% overlap with plain".into(),
            "1.000".into(),
            format!("{:.3}", mean(&overlaps)),
        ]);
        tables.push(t);
    }

    // 5. Hierarchy max-propagation on vs off: effect on precision@0.2.
    {
        let no_prop =
            engine.prestige_with_options(&setup.pattern_sets, ScoreFunction::Pattern, true, false);
        let t_idx = setup
            .config
            .thresholds
            .iter()
            .position(|&t| (t - 0.2).abs() < 1e-9)
            .unwrap_or(0);
        let with = precision_curves(setup, &setup.pattern_sets, &setup.pattern_on_pattern);
        let without = precision_curves(setup, &setup.pattern_sets, &no_prop);
        let mut t = Table::new(
            "Ablation — hierarchy max-propagation (precision at t=0.2)",
            &["variant", "avg precision", "median precision"],
        );
        t.push_row(vec![
            "with propagation".into(),
            format!("{:.3}", with.average[t_idx]),
            format!("{:.3}", with.median[t_idx]),
        ]);
        t.push_row(vec![
            "without propagation".into(),
            format!("{:.3}", without.average[t_idx]),
            format!("{:.3}", without.median[t_idx]),
        ]);
        tables.push(t);
    }

    tables
}

/// Descriptive statistics of the generated testbed (provenance for
/// EXPERIMENTS.md).
pub fn testbed_stats(setup: &Setup) -> Vec<Table> {
    let stats = corpus::stats::CorpusStats::compute(setup.searcher.corpus());
    let onto = setup.searcher.ontology();
    let mut t = Table::new("Testbed statistics", &["metric", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("ontology terms", onto.len().to_string()),
        ("ontology max level", onto.max_level().to_string()),
        ("papers", stats.n_papers.to_string()),
        ("authors", stats.n_authors.to_string()),
        ("citation edges", stats.n_citations.to_string()),
        (
            "mean references/paper",
            format!("{:.1}", stats.mean_references),
        ),
        ("vocabulary size", stats.vocab_size.to_string()),
        ("terms with evidence", stats.terms_with_evidence.to_string()),
        (
            "text-based contexts",
            setup.text_sets.n_contexts().to_string(),
        ),
        (
            "pattern-based contexts",
            setup.pattern_sets.n_contexts().to_string(),
        ),
        (
            "experiment contexts (≥ min size, pattern set)",
            setup
                .pattern_sets
                .contexts_with_min_size(setup.config.min_context_size)
                .len()
                .to_string(),
        ),
        ("queries", setup.queries.len().to_string()),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.to_string(), v]);
    }
    vec![t]
}
