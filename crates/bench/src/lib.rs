//! Experiment harness: shared setup and the per-figure experiment
//! implementations that regenerate every table/figure of the paper's
//! evaluation section (§5). Each `src/bin/fig5_*.rs` binary is a thin
//! wrapper over a function here; `run_all` executes everything and
//! collects the tables.
//!
//! Scale flags (all binaries): `--paper-scale` mirrors the paper's
//! setup (72k papers, min context size 100 — takes a while);
//! `--terms N`, `--papers N`, `--queries N`, `--seed N`,
//! `--min-context N` override individual knobs.

pub mod diff;
pub mod experiments;
pub mod load;
pub mod netload;
pub mod setup;

pub use diff::{diff_snapshots, DiffReport, DiffThresholds, SpanDiff, SpanVerdict};
pub use experiments::*;
pub use load::{default_serve_slos, sim_cost_ns, LoadConfig, LoadHarness, LoadReport, LoopMode};
pub use netload::{
    network_serve_slos, overload_compare, run_network, service_costs, simulate_overload,
    NetLoadReport, OverloadConfig, OverloadOutcome,
};
pub use setup::{ExpConfig, Setup};
