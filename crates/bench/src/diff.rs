//! Comparing two [`MetricsSnapshot`]s for performance regressions.
//!
//! `metrics-diff <baseline.json> <current.json>` compares the per-span
//! p50 latencies of a current run against a checked-in baseline and
//! exits nonzero when a *gated* span regresses past its threshold. The
//! report prints every span present in either snapshot, so the gate
//! doubles as a quick before/after latency table.
//!
//! Thresholds are relative and deliberately generous by default (CI
//! runners vary wildly in absolute speed); the gate catches order-of-
//! magnitude regressions — an accidentally quadratic loop, a lock in
//! the hot path — not single-digit-percent noise. Spans whose baseline
//! p50 sits below the noise floor are reported but never gated.

use obs::MetricsSnapshot;

/// Spans gated by default: the per-query path the paper's §5 latency
/// claims rest on, plus the offline stages big enough to be stable.
pub const DEFAULT_GATED: &[&str] = &[
    "engine.search",
    "search.select_contexts",
    "search.candidates",
    "search.rank",
];

/// Tunable comparison policy.
#[derive(Debug, Clone)]
pub struct DiffThresholds {
    /// Allowed relative p50 growth for gated spans, as a fraction:
    /// `3.0` means "fail if current p50 > 4× baseline p50".
    pub max_regression: f64,
    /// Per-span overrides of [`max_regression`](Self::max_regression).
    pub per_span: Vec<(String, f64)>,
    /// Span names that participate in the pass/fail decision. A gated
    /// span missing from the current snapshot fails the gate (the
    /// instrumentation was lost); one missing from the baseline is
    /// reported as new but passes.
    pub gated: Vec<String>,
    /// Baseline p50s at or below this many nanoseconds are too noisy
    /// to gate — the span is still listed in the report.
    pub min_baseline_ns: u64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        Self {
            max_regression: 3.0,
            per_span: Vec::new(),
            gated: DEFAULT_GATED.iter().map(|s| s.to_string()).collect(),
            min_baseline_ns: 10_000,
        }
    }
}

impl DiffThresholds {
    fn threshold_for(&self, span: &str) -> f64 {
        self.per_span
            .iter()
            .find(|(name, _)| name == span)
            .map(|&(_, t)| t)
            .unwrap_or(self.max_regression)
    }
}

/// Verdict for one span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanVerdict {
    /// Within threshold (or not gated / below the noise floor).
    Ok,
    /// Gated and past threshold.
    Regressed,
    /// Gated but absent from the current snapshot.
    MissingInCurrent,
    /// Present in current only — informational.
    NewInCurrent,
}

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct SpanDiff {
    /// Span name.
    pub name: String,
    /// Baseline median, ns (0 when missing from the baseline).
    pub baseline_p50_ns: u64,
    /// Current median, ns (0 when missing from the current snapshot).
    pub current_p50_ns: u64,
    /// `current/baseline − 1`; `None` when either side is missing or
    /// the baseline p50 is zero.
    pub change: Option<f64>,
    /// Whether this span participates in the pass/fail decision.
    pub gated: bool,
    /// The relative threshold applied (gated spans only).
    pub threshold: f64,
    /// The verdict.
    pub verdict: SpanVerdict,
}

/// Full comparison result.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every span in either snapshot, baseline order first.
    pub spans: Vec<SpanDiff>,
}

impl DiffReport {
    /// True when no gated span regressed or went missing.
    pub fn passed(&self) -> bool {
        !self.spans.iter().any(|d| {
            matches!(
                d.verdict,
                SpanVerdict::Regressed | SpanVerdict::MissingInCurrent
            )
        })
    }

    /// The failing rows.
    pub fn failures(&self) -> Vec<&SpanDiff> {
        self.spans
            .iter()
            .filter(|d| {
                matches!(
                    d.verdict,
                    SpanVerdict::Regressed | SpanVerdict::MissingInCurrent
                )
            })
            .collect()
    }

    /// Plain-text table: one row per span, failures flagged.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>12} {:>12} {:>9}  verdict\n",
            "span", "base p50", "cur p50", "change"
        ));
        for d in &self.spans {
            let change = match d.change {
                Some(c) => format!("{:+.1}%", c * 100.0),
                None => "-".to_string(),
            };
            let verdict = match d.verdict {
                SpanVerdict::Ok => {
                    if d.gated {
                        format!("ok (gate ≤ +{:.0}%)", d.threshold * 100.0)
                    } else {
                        "ok".to_string()
                    }
                }
                SpanVerdict::Regressed => {
                    format!("REGRESSED (gate ≤ +{:.0}%)", d.threshold * 100.0)
                }
                SpanVerdict::MissingInCurrent => "MISSING in current".to_string(),
                SpanVerdict::NewInCurrent => "new".to_string(),
            };
            out.push_str(&format!(
                "{:<34} {:>12} {:>12} {:>9}  {}\n",
                d.name,
                fmt_ns(d.baseline_p50_ns),
                fmt_ns(d.current_p50_ns),
                change,
                verdict
            ));
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns == 0 {
        "-".to_string()
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Compare `current` against `baseline` under `thresholds`.
pub fn diff_snapshots(
    baseline: &MetricsSnapshot,
    current: &MetricsSnapshot,
    thresholds: &DiffThresholds,
) -> DiffReport {
    let mut spans = Vec::new();
    for b in &baseline.spans {
        let gated = thresholds.gated.iter().any(|g| g == &b.name);
        let threshold = thresholds.threshold_for(&b.name);
        match current.span(&b.name) {
            Some(c) => {
                let change = if b.p50_ns > 0 {
                    Some(c.p50_ns as f64 / b.p50_ns as f64 - 1.0)
                } else {
                    None
                };
                let noisy = b.p50_ns <= thresholds.min_baseline_ns;
                let regressed = gated && !noisy && change.is_some_and(|ch| ch > threshold);
                spans.push(SpanDiff {
                    name: b.name.clone(),
                    baseline_p50_ns: b.p50_ns,
                    current_p50_ns: c.p50_ns,
                    change,
                    gated,
                    threshold,
                    verdict: if regressed {
                        SpanVerdict::Regressed
                    } else {
                        SpanVerdict::Ok
                    },
                });
            }
            None => spans.push(SpanDiff {
                name: b.name.clone(),
                baseline_p50_ns: b.p50_ns,
                current_p50_ns: 0,
                change: None,
                gated,
                threshold,
                verdict: if gated {
                    SpanVerdict::MissingInCurrent
                } else {
                    SpanVerdict::Ok
                },
            }),
        }
    }
    for c in &current.spans {
        if baseline.span(&c.name).is_none() {
            spans.push(SpanDiff {
                name: c.name.clone(),
                baseline_p50_ns: 0,
                current_p50_ns: c.p50_ns,
                change: None,
                gated: false,
                threshold: thresholds.max_regression,
                verdict: SpanVerdict::NewInCurrent,
            });
        }
    }
    DiffReport { spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{MetricsSnapshot, SpanSnapshot};

    fn snap(spans: &[(&str, u64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: spans
                .iter()
                .map(|&(name, p50)| SpanSnapshot {
                    name: name.to_string(),
                    count: 10,
                    total_ns: p50 * 10,
                    self_ns: p50 * 10,
                    p50_ns: p50,
                    p95_ns: p50 * 2,
                    p99_ns: p50 * 3,
                })
                .collect(),
        }
    }

    fn gate_on(names: &[&str]) -> DiffThresholds {
        DiffThresholds {
            gated: names.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn within_threshold_passes() {
        let base = snap(&[("engine.search", 1_000_000)]);
        let cur = snap(&[("engine.search", 3_500_000)]);
        let report = diff_snapshots(&base, &cur, &gate_on(&["engine.search"]));
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn past_threshold_fails_only_when_gated() {
        let base = snap(&[("engine.search", 1_000_000), ("other.span", 1_000_000)]);
        let cur = snap(&[("engine.search", 9_000_000), ("other.span", 9_000_000)]);
        let report = diff_snapshots(&base, &cur, &gate_on(&["engine.search"]));
        assert!(!report.passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "engine.search");
        assert_eq!(failures[0].verdict, SpanVerdict::Regressed);
    }

    #[test]
    fn missing_gated_span_fails() {
        let base = snap(&[("engine.search", 1_000_000)]);
        let cur = snap(&[]);
        let report = diff_snapshots(&base, &cur, &gate_on(&["engine.search"]));
        assert!(!report.passed());
        assert_eq!(report.failures()[0].verdict, SpanVerdict::MissingInCurrent);
    }

    #[test]
    fn noise_floor_suppresses_tiny_baselines() {
        // 5µs baseline is below the 10µs floor: a 10× blowup passes.
        let base = snap(&[("engine.search", 5_000)]);
        let cur = snap(&[("engine.search", 50_000)]);
        let report = diff_snapshots(&base, &cur, &gate_on(&["engine.search"]));
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn per_span_override_takes_precedence() {
        let base = snap(&[("engine.search", 1_000_000)]);
        let cur = snap(&[("engine.search", 1_500_000)]);
        let mut t = gate_on(&["engine.search"]);
        t.per_span.push(("engine.search".to_string(), 0.2));
        let report = diff_snapshots(&base, &cur, &t);
        assert!(!report.passed(), "+50% must fail a 20% gate");
    }

    #[test]
    fn new_span_in_current_is_informational() {
        let base = snap(&[]);
        let cur = snap(&[("brand.new", 1_000_000)]);
        let report = diff_snapshots(&base, &cur, &DiffThresholds::default());
        assert!(report.passed());
        assert_eq!(report.spans[0].verdict, SpanVerdict::NewInCurrent);
    }

    #[test]
    fn report_renders_every_span() {
        let base = snap(&[("a", 1_000), ("b", 2_000_000)]);
        let cur = snap(&[("b", 2_100_000), ("c", 10)]);
        let report = diff_snapshots(&base, &cur, &DiffThresholds::default());
        let text = report.render();
        for name in ["a", "b", "c"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
