//! `litsearch` — command-line front-end for the context-based
//! literature search library.
//!
//! The offline/online split of the paper as a pipeline of commands:
//!
//! ```text
//! litsearch generate --terms 400 --papers 2000 --out ./data
//! litsearch assign   --data ./data --kind pattern
//! litsearch prestige --data ./data --kind pattern --function pattern
//! litsearch search   --data ./data --kind pattern --function pattern \
//!                    --query "kinase signaling pathway"
//! litsearch stats    --data ./data
//! ```
//!
//! `generate` writes `ontology.obo` (the standard GO distribution
//! format) and `corpus.json`; `assign`/`prestige` write their artifacts
//! next to them; `search` loads everything and prints ranked results.

use litsearch::context_search::persist::{
    context_sets_from_json, context_sets_to_json, load_snapshot, prestige_from_json,
    prestige_to_json, save_snapshot,
};
use litsearch::context_search::{
    ContextId, ContextPaperSets, ContextSearchEngine, EngineConfig, EngineSnapshot, PrestigeScores,
    ScoreFunction, SearchResult, Searcher,
};
use litsearch::corpus::Corpus;
use litsearch::ontology::obo::{parse_obo, write_obo};
use litsearch::ontology::Ontology;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Global flag: `--metrics PATH` turns on telemetry for any command
    // and writes a JSON MetricsSnapshot to PATH on success.
    let metrics_path = flags.get("metrics").map(PathBuf::from);
    if metrics_path.is_some() {
        obs::enable();
    }
    // Global flags: `--trace PATH` (Chrome trace format, loadable in
    // Perfetto / chrome://tracing) and `--trace-jsonl PATH` (one event
    // per line) capture per-query explain traces for any command.
    let trace_path = flags.get("trace").map(PathBuf::from);
    let trace_jsonl_path = flags.get("trace-jsonl").map(PathBuf::from);
    if trace_path.is_some() || trace_jsonl_path.is_some() {
        let id = obs::trace_start();
        eprintln!("tracing enabled (trace id {id})");
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "assign" => cmd_assign(&flags),
        "prestige" => cmd_prestige(&flags),
        "prepare" => cmd_prepare(&flags),
        "search" => cmd_search(&flags),
        "stats" => cmd_stats(&flags),
        "trace" => cmd_trace(&flags),
        "top" => cmd_top(&flags),
        "quality" => cmd_quality(&flags),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => {
            if let Some(path) = &metrics_path {
                if let Err(e) = obs::write_json(path) {
                    eprintln!("error: cannot write metrics to {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("metrics written to {}", path.display());
            }
            if trace_path.is_some() || trace_jsonl_path.is_some() {
                let Some(data) = obs::trace_finish() else {
                    eprintln!("error: trace was started but no data collected");
                    return ExitCode::FAILURE;
                };
                if data.dropped > 0 {
                    eprintln!(
                        "warning: trace buffer overflowed, {} event(s) dropped",
                        data.dropped
                    );
                }
                for (path, chrome) in [(&trace_path, true), (&trace_jsonl_path, false)] {
                    let Some(path) = path else { continue };
                    let res = if chrome {
                        data.write_chrome(path)
                    } else {
                        data.write_jsonl(path)
                    };
                    if let Err(e) = res {
                        eprintln!("error: cannot write trace to {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "trace {} ({} events) written to {}",
                        data.trace_id,
                        data.events.len(),
                        path.display()
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `litsearch trace --file PATH`: summarize a previously captured
/// Chrome-format trace into a per-span self-time tree.
fn cmd_trace(flags: &Flags) -> Result<(), String> {
    let path = flags.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let data = obs::TraceData::from_chrome_json(&text)
        .map_err(|e| format!("{path} is not a Chrome trace: {e}"))?;
    print!("{}", data.summary().render());
    if data.dropped > 0 {
        eprintln!(
            "warning: the trace sink dropped {} event(s) during capture \
             (tracked live as the obs.trace.dropped_events counter)",
            data.dropped
        );
    }
    Ok(())
}

/// The (searcher, query texts) workload shared by `top` and `quality`:
/// a warm snapshot from disk, or a tiny in-process demo build.
fn dashboard_workload(flags: &Flags, seed: u64) -> Result<(Searcher, Vec<String>), String> {
    use litsearch::corpus::queries::{generate_queries, QueryConfig};

    let (searcher, queries) = if let Some(dir) = flags.get("snapshot") {
        eprintln!("loading snapshot from {dir}…");
        let snapshot =
            load_snapshot(Path::new(dir), EngineConfig::default()).map_err(|e| e.to_string())?;
        let queries = generate_queries(
            snapshot.ontology(),
            snapshot.corpus(),
            &QueryConfig {
                seed,
                ..Default::default()
            },
        );
        (
            snapshot.searcher(),
            queries.into_iter().map(|q| q.text).collect::<Vec<_>>(),
        )
    } else {
        eprintln!("no --snapshot: preparing a tiny in-process demo snapshot…");
        let snapshot = litsearch::demo::snapshot(litsearch::demo::Scale::Tiny, seed);
        let queries = generate_queries(
            snapshot.ontology(),
            snapshot.corpus(),
            &QueryConfig {
                n_queries: 40,
                seed,
                ..Default::default()
            },
        );
        (
            snapshot.searcher(),
            queries.into_iter().map(|q| q.text).collect::<Vec<_>>(),
        )
    };
    if queries.is_empty() {
        return Err("workload produced no queries".to_string());
    }
    Ok((searcher, queries))
}

/// `litsearch top`: drive load at a snapshot (or an in-process demo
/// build) and render the live serving dashboard — windowed per-stage
/// latencies, SLO burn rates, and the slow-query leaderboard.
/// `--once --json` prints a single machine-readable report for CI.
/// `--quality N` shadow-scores 1/N queries under all three prestige
/// functions and adds the ranking-quality panel.
fn cmd_top(flags: &Flags) -> Result<(), String> {
    use bench::load::{default_serve_slos, LoadConfig, LoadHarness, LoopMode, QualityLoadConfig};

    let seed = flags.get_usize("seed", 2007)? as u64;

    // Validate every flag before touching the snapshot: loading a large
    // snapshot costs real time, and a typo'd --kind should fail now,
    // not after the load.
    let kind = match flags.get("kind").unwrap_or("pattern") {
        "text" => litsearch::context_search::ContextSetKind::TextBased,
        "pattern" => litsearch::context_search::ContextSetKind::PatternBased,
        other => return Err(format!("--kind must be text or pattern, got {other:?}")),
    };
    let function = match flags.get("function") {
        Some(_) => parse_function(flags)?,
        None => ScoreFunction::Pattern,
    };
    let slow_threshold_ns = flags.get_usize("slow-threshold-ms", 50)? as u64 * 1_000_000;
    let config = LoadConfig {
        threads: flags.get_usize("threads", 4)?,
        queries_per_thread: flags.get_usize("queries", 200)?,
        mode: LoopMode::Closed,
        sim: flags.get_bool("sim"),
        limit: flags.get_usize("limit", 10)?,
        kind,
        function,
        window_secs: flags.get_usize("window", 60)? as u64,
        slow_threshold_ns,
        slow_capacity: flags.get_usize("slow-capacity", 10)?,
        capture_traces: true,
        error_every: flags.get_usize("error-every", 0)? as u64,
        slos: default_serve_slos(slow_threshold_ns),
        quality: match flags.get_usize("quality", 0)? {
            0 => None,
            every => Some(QualityLoadConfig {
                sample_every: every as u64,
                ..Default::default()
            }),
        },
    };
    let once = flags.get_bool("once");
    let as_json = flags.get_bool("json");
    let refresh_ms = flags.get_usize("refresh-ms", 500)? as u64;

    let (searcher, queries) = dashboard_workload(flags, seed)?;

    let harness = LoadHarness::new(config);
    let report = if once || harness.config().sim {
        // No live ticking: simulated time has no live timeline to
        // watch, and --once wants exactly one report.
        harness.run(&searcher, &queries)
    } else {
        harness.run_with_tick(&searcher, &queries, refresh_ms, |h| {
            // ANSI clear + home, then the current windowed view.
            print!("\x1b[2J\x1b[H{}", h.report_now().render_dashboard());
            use std::io::Write;
            let _ = std::io::stdout().flush();
        })
    };
    if as_json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_dashboard());
    }
    Ok(())
}

/// `litsearch quality`: run a deterministic simulated load with shadow
/// scoring on and emit the ranking-quality report — per-function
/// top-k overlap, winner agreement, score margins and distributions,
/// plus a drift verdict when judged against a checked-in baseline.
fn cmd_quality(flags: &Flags) -> Result<(), String> {
    use bench::load::{LoadConfig, LoadHarness, LoopMode, QualityLoadConfig};

    let seed = flags.get_usize("seed", 2007)? as u64;
    let report_kind = match flags.get("report").unwrap_or("md") {
        k @ ("json" | "md") => k,
        other => return Err(format!("--report must be json or md, got {other:?}")),
    };
    let baseline = match flags.get("baseline") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Some(obs::QualityBaseline::from_json(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let quality = QualityLoadConfig {
        sample_every: flags.get_usize("sample-every", 4)?.max(1) as u64,
        baseline,
        ..Default::default()
    };
    let n_bins = quality.n_bins;
    let config = LoadConfig {
        threads: flags.get_usize("threads", 4)?,
        queries_per_thread: flags.get_usize("queries", 200)?,
        mode: LoopMode::Closed,
        // Always simulated: the quality report is a deterministic,
        // byte-stable function of the workload, so CI can diff it.
        sim: true,
        limit: flags.get_usize("limit", 10)?,
        quality: Some(quality),
        ..Default::default()
    };

    let (searcher, queries) = dashboard_workload(flags, seed)?;
    let harness = LoadHarness::new(config);
    let report = harness.run(&searcher, &queries);
    let quality = report
        .quality
        .as_ref()
        .expect("quality sampling was configured");

    let rendered = match report_kind {
        "json" => quality.to_json(),
        _ => quality.to_markdown(),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("quality report: {path}");
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = flags.get("write-baseline") {
        let derived = obs::QualityBaseline::from_summary(
            &quality.summary,
            n_bins,
            &obs::BaselineTolerances::default(),
        );
        std::fs::write(path, derived.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("quality baseline: {path}");
    }
    if report.has_quality_drift() {
        if flags.get_bool("fail-on-drift") {
            return Err("ranking-quality drift is critical (see report)".to_string());
        }
        eprintln!("warning: ranking-quality drift is critical (see report)");
    }
    Ok(())
}

/// The serving searcher: a warm snapshot from disk, or a tiny
/// in-process demo build when no `--snapshot` is given.
fn serve_searcher(flags: &Flags, seed: u64) -> Result<Searcher, String> {
    if let Some(dir) = flags.get("snapshot") {
        eprintln!("loading snapshot from {dir}…");
        let snapshot =
            load_snapshot(Path::new(dir), EngineConfig::default()).map_err(|e| e.to_string())?;
        Ok(snapshot.searcher())
    } else {
        eprintln!("no --snapshot: preparing a tiny in-process demo snapshot…");
        let snapshot = litsearch::demo::snapshot(litsearch::demo::Scale::Tiny, seed);
        Ok(snapshot.searcher())
    }
}

/// `litsearch serve`: put the lock-free [`Searcher`] behind the
/// hand-rolled HTTP frontend — bounded admission queue, per-request
/// deadlines with EWMA load shedding (429 + Retry-After), and graceful
/// drain on SIGTERM/SIGINT (stop accepting, finish in-flight, flush
/// obs snapshots). Endpoints: POST /v1/search, GET /healthz,
/// GET /metrics, GET /quality.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use std::io::Write as _;
    use std::sync::Arc;

    let seed = flags.get_usize("seed", 2007)? as u64;
    let host = flags.get("addr").unwrap_or("127.0.0.1").to_string();
    let port = flags.get_usize("port", 8080)?;
    let workers = flags.get_usize("workers", 4)?.max(1);
    let queue_depth = flags.get_usize("queue-depth", 64)?;
    let deadline_ms = flags.get_usize("deadline-ms", 50)? as u64;
    let window_secs = flags.get_usize("window", 60)? as u64;
    let limit = flags.get_usize("limit", 10)?;
    let slow_threshold_ns = flags.get_usize("slow-threshold-ms", 50)? as u64 * 1_000_000;
    let quality_every = flags.get_usize("quality", 0)? as u64;
    let kind = match flags.get("kind").unwrap_or("pattern") {
        "text" => litsearch::context_search::ContextSetKind::TextBased,
        "pattern" => litsearch::context_search::ContextSetKind::PatternBased,
        other => return Err(format!("--kind must be text or pattern, got {other:?}")),
    };
    let function = match flags.get("function") {
        Some(_) => parse_function(flags)?,
        None => ScoreFunction::Pattern,
    };

    let searcher = serve_searcher(flags, seed)?;

    // Serving observability: spans stream into a rolling recorder so
    // /metrics and `litsearch top`-style tooling see live windows, and
    // a slow-request leaderboard catches tail outliers.
    obs::enable();
    let clock: Arc<dyn obs::Clock> = Arc::new(obs::MonotonicClock::new());
    let rolling = Arc::new(obs::RollingRecorder::new(
        obs::RollingConfig {
            bucket_secs: 1,
            window_secs: window_secs.max(60),
            shards: workers,
        },
        Arc::clone(&clock),
    ));
    obs::attach_rolling(Arc::clone(&rolling));
    let slowlog = Arc::new(obs::SlowQueryLog::new(
        slow_threshold_ns,
        flags.get_usize("slow-capacity", 10)?,
    ));
    obs::attach_slow_log(Arc::clone(&slowlog));
    let shadow = if quality_every > 0 {
        let aggregator = Arc::new(obs::QualityAggregator::new(Arc::clone(&rolling), 10));
        obs::attach_quality(Arc::clone(&aggregator));
        Some(Arc::new(litsearch::context_search::QualityShadow::spawn(
            searcher.clone(),
            litsearch::context_search::ShadowConfig {
                sample_every: quality_every,
                kind,
                limit,
                ..Default::default()
            },
            aggregator,
        )))
    } else {
        None
    };

    let config = serve::ServerConfig {
        addr: format!("{host}:{port}"),
        workers,
        queue_depth,
        deadline_ns: deadline_ms * 1_000_000,
        shed: !flags.get_bool("no-shed"),
        defaults: serve::SearchDefaults {
            kind,
            function,
            limit,
        },
        keep_alive_idle_ns: 5_000_000_000,
        shadow: shadow.clone(),
    };
    let handle = serve::start_with_clock(searcher, config, clock)
        .map_err(|e| format!("cannot start server on {host}:{port}: {e}"))?;
    let addr = handle.local_addr();
    println!("listening on http://{addr}");
    let _ = std::io::stdout().flush();
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, addr.port().to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!(
        "{workers} workers, queue depth {}, deadline {} ms, shedding {} — SIGTERM/SIGINT drains",
        if queue_depth == 0 {
            "unbounded".to_string()
        } else {
            queue_depth.to_string()
        },
        deadline_ms,
        if flags.get_bool("no-shed") {
            "off"
        } else {
            "on"
        },
    );

    serve::signal::install_term_handler();
    while !serve::signal::term_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("signal received: draining (stop accepting, finish in-flight)…");
    let summary = handle.await_drained();
    if let Some(shadow) = &shadow {
        shadow.finish();
    }
    eprintln!("drained: {}", summary.render());
    if let Some(path) = flags.get("slow-jsonl") {
        std::fs::write(path, slowlog.dump_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("slow-request log: {path}");
    }
    Ok(())
}

const USAGE: &str = "\
litsearch — context-based literature search (ICDE 2007 reproduction)

USAGE:
  litsearch generate --out DIR [--terms N] [--papers N] [--seed N]
  litsearch assign   --data DIR --kind text|pattern
  litsearch prestige --data DIR --kind text|pattern --function citation|text|pattern
  litsearch prepare  --data DIR --out DIR [--build-threads N]
  litsearch search   --data DIR --kind text|pattern --function citation|text|pattern
                     --query TEXT [--limit N] [--repeat N]
  litsearch search   --snapshot DIR --kind text|pattern --function citation|text|pattern
                     --query TEXT [--limit N] [--repeat N]
  litsearch stats    --data DIR
  litsearch trace    --file PATH
  litsearch top      [--snapshot DIR] [--threads N] [--queries N] [--window SECS]
                     [--slow-threshold-ms MS] [--error-every N] [--refresh-ms MS]
                     [--sim] [--once] [--json] [--quality N]
  litsearch quality  [--snapshot DIR] [--threads N] [--queries N] [--sample-every N]
                     [--baseline PATH] [--write-baseline PATH] [--report json|md]
                     [--out PATH] [--fail-on-drift]
  litsearch serve    [--snapshot DIR] [--addr HOST] [--port P] [--workers N]
                     [--queue-depth D] [--deadline-ms T] [--no-shed]
                     [--kind text|pattern] [--function citation|text|pattern]
                     [--limit N] [--window SECS] [--slow-threshold-ms MS]
                     [--quality N] [--port-file PATH] [--slow-jsonl PATH]
  litsearch help

`prepare` runs the whole offline phase — context sets, pattern mining,
and all five standard prestige tables — as a dependency-ordered stage
plan (`--build-threads N` runs independent stages concurrently; 1 forces
the sequential schedule; both are result-identical) and writes a
versioned snapshot directory. `search --snapshot DIR` warm-starts from
that directory, skipping every per-context prestige/PageRank
computation.

Any command also accepts `--metrics PATH`: collect telemetry (spans,
counters, latency histograms) and write a JSON snapshot to PATH.
`search --repeat N` re-runs the query N times so the snapshot carries
p50/p95/p99 latency percentiles per pipeline stage.

Any command also accepts `--trace PATH` (Chrome trace format, open in
Perfetto or chrome://tracing) and/or `--trace-jsonl PATH` (one event
per line): capture begin/end span events plus explain instants — the
selected contexts, candidate counts per stage, and per-function score
components for the top results. `litsearch trace --file PATH` prints
a self-time tree summarizing a captured Chrome trace.

`top` drives query load at a snapshot (or a tiny in-process demo build
when no `--snapshot` is given) and renders a live terminal dashboard:
rolling-window p50/p95/p99 per pipeline stage, SLO burn rates, and the
slow-query leaderboard with captured explain traces. `--once` runs one
batch and prints a single report; `--json` emits it machine-readable
(the CI artifact form); `--sim` uses deterministic simulated timing.
`--quality N` shadow-scores one of every N queries under all three
prestige functions and adds the ranking-quality panel.

`quality` runs a deterministic simulated load with shadow scoring on
and emits the ranking-quality report: per-function top-k overlap,
winning-context agreement, score margins and per-context score
distributions. `--baseline PATH` judges the run against a checked-in
baseline (warn/critical drift bands); `--fail-on-drift` turns a
critical verdict into a nonzero exit; `--write-baseline PATH` derives
a fresh baseline from this run.

`serve` puts the snapshot behind the hand-rolled HTTP/1.1 frontend:
POST /v1/search (JSON body: query, kind, function, limit — response
bytes identical to the in-process Searcher), GET /healthz, GET
/metrics, GET /quality. An acceptor thread feeds a bounded admission
queue (--queue-depth, 0 = unbounded); requests carry a deadline from
enqueue (--deadline-ms, 0 = off) and are shed with 429 + Retry-After
when the remaining budget is below the EWMA-estimated service cost
(--no-shed disables shedding for control runs; a full queue rejects
with 503 at the door). --port 0 binds an ephemeral port (written to
--port-file for scripts); SIGTERM/SIGINT triggers a graceful drain —
stop accepting, finish every admitted request, then flush metrics
(--metrics PATH) and the slow-request log (--slow-jsonl PATH).
--quality N shadow-scores one of every N served queries so /quality
reports live ranking-quality aggregates.";

/// Minimal `--flag value` parser (no external dependencies).
struct Flags {
    pairs: Vec<(String, String)>,
}

/// Flags that take no value (presence means `true`).
const BOOL_FLAGS: &[&str] = &["once", "json", "sim", "quiet", "fail-on-drift", "no-shed"];

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
            if BOOL_FLAGS.contains(&key) {
                pairs.push((key.to_string(), "true".to_string()));
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Self { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
            None => Ok(default),
        }
    }

    fn get_bool(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v == "true")
    }
}

fn data_paths(dir: &str) -> (PathBuf, PathBuf) {
    let d = Path::new(dir);
    (d.join("ontology.obo"), d.join("corpus.json"))
}

fn load_data(flags: &Flags) -> Result<(Ontology, Corpus, String), String> {
    let dir = flags.require("data")?.to_string();
    let (onto_path, corpus_path) = data_paths(&dir);
    let onto_text = std::fs::read_to_string(&onto_path)
        .map_err(|e| format!("cannot read {}: {e}", onto_path.display()))?;
    let ontology = parse_obo(&onto_text).map_err(|e| format!("bad ontology: {e}"))?;
    let corpus_text = std::fs::read_to_string(&corpus_path)
        .map_err(|e| format!("cannot read {}: {e}", corpus_path.display()))?;
    let corpus = Corpus::from_json(&corpus_text).map_err(|e| format!("bad corpus: {e}"))?;
    Ok((ontology, corpus, dir))
}

fn parse_kind(flags: &Flags) -> Result<&str, String> {
    match flags.require("kind")? {
        k @ ("text" | "pattern") => Ok(k),
        other => Err(format!("--kind must be text or pattern, got {other:?}")),
    }
}

fn parse_function(flags: &Flags) -> Result<ScoreFunction, String> {
    match flags.require("function")? {
        "citation" => Ok(ScoreFunction::Citation),
        "text" => Ok(ScoreFunction::Text),
        "pattern" => Ok(ScoreFunction::Pattern),
        other => Err(format!(
            "--function must be citation, text or pattern, got {other:?}"
        )),
    }
}

fn sets_path(dir: &str, kind: &str) -> PathBuf {
    Path::new(dir).join(format!("sets_{kind}.json"))
}

fn prestige_path(dir: &str, kind: &str, function: ScoreFunction) -> PathBuf {
    Path::new(dir).join(format!("prestige_{kind}_{}.json", function.name()))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let out = flags.require("out")?.to_string();
    let n_terms = flags.get_usize("terms", 400)?;
    let n_papers = flags.get_usize("papers", 2_000)?;
    let seed = flags.get_usize("seed", 42)? as u64;
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {out}: {e}"))?;

    eprintln!("generating {n_terms}-term ontology and {n_papers}-paper corpus (seed {seed})…");
    let ontology = litsearch::ontology::generate_ontology(&litsearch::ontology::GeneratorConfig {
        n_terms,
        seed,
        ..Default::default()
    });
    let corpus = litsearch::corpus::generate_corpus(
        &ontology,
        &litsearch::corpus::CorpusConfig {
            n_papers,
            seed: seed.wrapping_add(1),
            ..Default::default()
        },
    );
    let term_names: Vec<String> = ontology
        .term_ids()
        .map(|t| ontology.term(t).name.clone())
        .collect();
    let (onto_path, corpus_path) = data_paths(&out);
    std::fs::write(&onto_path, write_obo(&ontology)).map_err(|e| e.to_string())?;
    std::fs::write(&corpus_path, corpus.to_json(&term_names)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} and {}",
        onto_path.display(),
        corpus_path.display()
    );
    Ok(())
}

fn cmd_assign(flags: &Flags) -> Result<(), String> {
    let (ontology, corpus, dir) = load_data(flags)?;
    let kind = parse_kind(flags)?;
    eprintln!("building engine…");
    let engine = ContextSearchEngine::build(ontology, corpus, EngineConfig::default());
    eprintln!("assigning papers to contexts ({kind})…");
    let sets = match kind {
        "text" => engine.text_context_sets(),
        _ => engine.pattern_context_sets(),
    };
    let path = sets_path(&dir, kind);
    let json = context_sets_to_json(&sets).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} contexts, mean size {:.1})",
        path.display(),
        sets.n_contexts(),
        sets.mean_size()
    );
    Ok(())
}

fn cmd_prestige(flags: &Flags) -> Result<(), String> {
    let (ontology, corpus, dir) = load_data(flags)?;
    let kind = parse_kind(flags)?;
    let function = parse_function(flags)?;
    let sets = load_sets(&dir, kind)?;
    eprintln!("building engine…");
    let engine = ContextSearchEngine::build(ontology, corpus, EngineConfig::default());
    eprintln!("computing {} prestige…", function.name());
    let prestige = engine.prestige(&sets, function);
    let path = prestige_path(&dir, kind, function);
    let json = prestige_to_json(&prestige).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} scored contexts)",
        path.display(),
        prestige.contexts().count()
    );
    Ok(())
}

fn load_sets(dir: &str, kind: &str) -> Result<ContextPaperSets, String> {
    let path = sets_path(dir, kind);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {} (run `litsearch assign` first): {e}",
            path.display()
        )
    })?;
    context_sets_from_json(&text).map_err(|e| e.to_string())
}

fn load_prestige(dir: &str, kind: &str, function: ScoreFunction) -> Result<PrestigeScores, String> {
    let path = prestige_path(dir, kind, function);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {} (run `litsearch prestige` first): {e}",
            path.display()
        )
    })?;
    prestige_from_json(&text).map_err(|e| e.to_string())
}

fn engine_config(flags: &Flags) -> Result<EngineConfig, String> {
    let default = EngineConfig::default();
    Ok(EngineConfig {
        build_threads: flags.get_usize("build-threads", default.build_threads)?,
        ..default
    })
}

/// `litsearch prepare`: run the full offline phase as a stage plan and
/// write a versioned snapshot directory for warm starts.
fn cmd_prepare(flags: &Flags) -> Result<(), String> {
    let (ontology, corpus, _dir) = load_data(flags)?;
    let out = flags.require("out")?.to_string();
    let config = engine_config(flags)?;
    eprintln!(
        "preparing snapshot (build threads: {})…",
        if config.build_threads == 0 {
            "auto".to_string()
        } else {
            config.build_threads.to_string()
        }
    );
    let snapshot = EngineSnapshot::prepare(ontology, corpus, config);
    save_snapshot(&snapshot, Path::new(&out)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote snapshot to {out} ({} contexts text / {} pattern, {} prestige tables)",
        snapshot
            .sets(litsearch::context_search::ContextSetKind::TextBased)
            .n_contexts(),
        snapshot
            .sets(litsearch::context_search::ContextSetKind::PatternBased)
            .n_contexts(),
        snapshot.pairs().len()
    );
    Ok(())
}

/// The two ways `search` can get a query path: a cold engine build from
/// the piecemeal `--data` artifacts, or a lock-free [`Searcher`] over a
/// warm-loaded `--snapshot` directory.
enum Backend {
    Cold(Box<ContextSearchEngine>),
    Warm(
        Searcher,
        litsearch::context_search::ContextSetKind,
        ScoreFunction,
    ),
}

impl Backend {
    fn search(
        &self,
        query: &str,
        sets: &ContextPaperSets,
        prestige: &PrestigeScores,
        limit: usize,
    ) -> Vec<SearchResult> {
        match self {
            Self::Cold(e) => e.search(query, sets, prestige, limit),
            // Warm serving goes through the serve path proper, so every
            // query carries the `serve.query` span the rolling windows
            // and SLOs watch. The snapshot holds the same tables the
            // caller resolved, so results are identical to the explicit
            // form (and the explicit form is the fallback).
            Self::Warm(s, kind, function) => s
                .query(query, *kind, *function, limit)
                .unwrap_or_else(|_| s.search(query, sets, prestige, limit)),
        }
    }

    fn select_contexts(&self, query: &str, sets: &ContextPaperSets) -> Vec<(ContextId, f64)> {
        match self {
            Self::Cold(e) => e.select_contexts(query, sets),
            Self::Warm(s, ..) => s.select_contexts(query, sets),
        }
    }

    fn ontology(&self) -> &Ontology {
        match self {
            Self::Cold(e) => e.ontology(),
            Self::Warm(s, ..) => s.ontology(),
        }
    }

    fn corpus(&self) -> &Corpus {
        match self {
            Self::Cold(e) => e.corpus(),
            Self::Warm(s, ..) => s.corpus(),
        }
    }

    fn snippet(&self, paper: litsearch::corpus::PaperId, query: &str) -> String {
        match self {
            Self::Cold(e) => e.snippet(paper, query),
            Self::Warm(s, ..) => s.snippet(paper, query),
        }
    }
}

fn cmd_search(flags: &Flags) -> Result<(), String> {
    let kind = parse_kind(flags)?;
    let function = parse_function(flags)?;
    let query = flags.require("query")?.to_string();
    let limit = flags.get_usize("limit", 10)?;
    let repeat = flags.get_usize("repeat", 1)?.max(1);
    let (engine, sets, prestige) = if let Some(snap_dir) = flags.get("snapshot") {
        eprintln!("loading snapshot from {snap_dir}…");
        let snapshot =
            load_snapshot(Path::new(snap_dir), engine_config(flags)?).map_err(|e| e.to_string())?;
        let set_kind = match kind {
            "text" => litsearch::context_search::ContextSetKind::TextBased,
            _ => litsearch::context_search::ContextSetKind::PatternBased,
        };
        let sets = snapshot.sets(set_kind).clone();
        let prestige = snapshot
            .prestige(set_kind, function)
            .ok_or_else(|| {
                format!(
                    "snapshot has no prestige table for ({kind}, {}); re-run `litsearch prepare`",
                    function.name()
                )
            })?
            .clone();
        (
            Backend::Warm(snapshot.searcher(), set_kind, function),
            sets,
            prestige,
        )
    } else {
        let (ontology, corpus, dir) = load_data(flags)?;
        let sets = load_sets(&dir, kind)?;
        let prestige = load_prestige(&dir, kind, function)?;
        eprintln!("building engine…");
        let engine = ContextSearchEngine::build(ontology, corpus, EngineConfig::default());
        (Backend::Cold(Box::new(engine)), sets, prestige)
    };

    // Warm-up repeats (beyond the reported run) populate the latency
    // histograms so --metrics percentiles are meaningful.
    for _ in 1..repeat {
        let _ = engine.search(&query, &sets, &prestige, limit);
    }

    let contexts = engine.select_contexts(&query, &sets);
    println!("query: {query:?}");
    println!("selected contexts:");
    for (c, score) in &contexts {
        println!(
            "  {:.2}  {} (level {})",
            score,
            engine.ontology().term(*c).name,
            engine.ontology().level(*c)
        );
    }
    let hits = engine.search(&query, &sets, &prestige, limit);
    println!("\ntop {} results:", hits.len());
    for (rank, h) in hits.iter().enumerate() {
        let p = engine.corpus().paper(h.paper);
        println!(
            "  {:>2}. R={:.3} (prestige {:.3}, match {:.3})  {}",
            rank + 1,
            h.relevancy,
            h.prestige,
            h.matching,
            p.title
        );
        println!("      {}", engine.snippet(h.paper, &query));
    }
    if obs::enabled() {
        let snap = obs::snapshot();
        eprintln!("\nquery latency breakdown over {repeat} run(s):");
        for name in [
            "engine.search",
            "search.select_contexts",
            "search.candidates",
            "search.rank",
        ] {
            if let Some(s) = snap.span(name) {
                eprintln!(
                    "  {name:<24} p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  (n={})",
                    s.p50_ns as f64 / 1e6,
                    s.p95_ns as f64 / 1e6,
                    s.p99_ns as f64 / 1e6,
                    s.count
                );
            }
        }
    }
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let (ontology, corpus, _) = load_data(flags)?;
    let stats = litsearch::corpus::stats::CorpusStats::compute(&corpus);
    println!(
        "ontology : {} terms, max level {}",
        ontology.len(),
        ontology.max_level()
    );
    println!("papers   : {}", stats.n_papers);
    println!("authors  : {}", stats.n_authors);
    println!(
        "citations: {} (mean {:.1}/paper)",
        stats.n_citations, stats.mean_references
    );
    println!("vocab    : {} analyzed terms", stats.vocab_size);
    println!(
        "evidence : {} terms with training papers",
        stats.terms_with_evidence
    );
    Ok(())
}
