//! Umbrella crate for the context-based literature search reproduction
//! (Ratprasartporn et al., ICDE 2007).
//!
//! Re-exports every workspace crate and provides [`demo`] — a one-call
//! builder of a synthetic ontology + corpus + engine used by the
//! examples and integration tests.

pub extern crate bench;
pub use citegraph;
pub use context_search;
pub use corpus;
pub use eval;
pub use ontology;
pub use patterns;
pub use serve;
pub use textproc;

/// Convenience builders for a ready-to-search demo setup.
///
/// ```
/// use litsearch::context_search::ScoreFunction;
/// use litsearch::demo::{engine, Scale};
///
/// let engine = engine(Scale::Tiny, 42);
/// let sets = engine.pattern_context_sets();
/// let prestige = engine.prestige(&sets, ScoreFunction::Pattern);
/// let hits = engine.search("biological process", &sets, &prestige, 5);
/// assert!(hits.len() <= 5);
/// ```
pub mod demo {
    use context_search::{ContextSearchEngine, EngineConfig};
    use corpus::CorpusConfig;
    use ontology::GeneratorConfig;

    /// Scale of a demo setup.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Scale {
        /// ~100 terms / ~200 papers — CI-friendly, builds in seconds.
        Tiny,
        /// ~400 terms / ~2,000 papers — interactive exploration.
        Small,
        /// ~1,200 terms / ~12,000 papers — the default experiment scale.
        Medium,
    }

    /// Ontology + corpus generator configs for a scale and seed.
    pub fn configs(scale: Scale, seed: u64) -> (GeneratorConfig, CorpusConfig) {
        let (n_terms, n_papers) = match scale {
            Scale::Tiny => (100, 200),
            Scale::Small => (400, 2_000),
            Scale::Medium => (1_200, 12_000),
        };
        let onto = GeneratorConfig {
            n_terms,
            seed,
            ..Default::default()
        };
        let mut corp = CorpusConfig {
            n_papers,
            seed: seed.wrapping_add(1),
            ..Default::default()
        };
        if scale == Scale::Tiny {
            corp.body_len = (40, 80);
            corp.abstract_len = (20, 40);
        }
        (onto, corp)
    }

    /// Build a complete engine at the given scale.
    pub fn engine(scale: Scale, seed: u64) -> ContextSearchEngine {
        let (ocfg, ccfg) = configs(scale, seed);
        let onto = ontology::generate_ontology(&ocfg);
        let corp = corpus::generate_corpus(&onto, &ccfg);
        ContextSearchEngine::build(onto, corp, EngineConfig::default())
    }

    /// Prepare a full immutable snapshot (all five standard prestige
    /// tables) at the given scale.
    pub fn snapshot(scale: Scale, seed: u64) -> std::sync::Arc<context_search::EngineSnapshot> {
        let (ocfg, ccfg) = configs(scale, seed);
        let onto = ontology::generate_ontology(&ocfg);
        let corp = corpus::generate_corpus(&onto, &ccfg);
        context_search::EngineSnapshot::prepare(onto, corp, EngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::demo::{engine, Scale};

    #[test]
    fn tiny_demo_engine_builds_and_searches() {
        let e = engine(Scale::Tiny, 42);
        assert!(e.corpus().len() == 200);
        let sets = e.pattern_context_sets();
        assert!(sets.n_contexts() > 10);
    }
}
