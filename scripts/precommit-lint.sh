#!/usr/bin/env bash
# Fast pre-commit lint: run the per-file token rules on the .rs files
# changed relative to HEAD. Workspace-scoped rules (call-graph
# reachability, span registry) need a full scan and stay in CI; this
# catches the per-file violations before they reach a PR.
#
# Install as a hook with:
#   ln -s ../../scripts/precommit-lint.sh .git/hooks/pre-commit
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

changed=$(git diff --name-only --diff-filter=ACMR HEAD -- '*.rs' | paste -sd, -)
if [ -z "$changed" ]; then
    echo "precommit-lint: no changed .rs files"
    exit 0
fi

exec cargo run -q -p analysis -- --paths "$changed" --deny-warnings
